#include "core/experiment.hh"

#include <atomic>
#include <map>

#include "core/cache.hh"
#include "core/metrics_io.hh"
#include "core/trace_run.hh"
#include "sim/log.hh"
#include "sim/threadpool.hh"

namespace middlesim::core
{

namespace
{
/** Process-wide dedupe accounting (reported by run_all / benches). */
std::atomic<std::uint64_t> gridRequested{0};
std::atomic<std::uint64_t> gridUnique{0};
} // namespace

GridDedupeStats
gridDedupeStats()
{
    return {gridRequested.load(), gridUnique.load()};
}

void
resetGridDedupeStats()
{
    gridRequested = 0;
    gridUnique = 0;
}

unsigned
ExperimentSpec::resolvedScale() const
{
    if (scale != 0)
        return scale;
    return workload == WorkloadKind::SpecJbb ? appCpus : 8;
}

double
RunResult::pathLength() const
{
    return txTotal ? static_cast<double>(cpi.instructions) /
                     static_cast<double>(txTotal)
                   : 0.0;
}

double
RunResult::gcFraction() const
{
    const double total = seconds;
    if (total <= 0.0)
        return 0.0;
    return sim::ticksToSeconds(gcPause) / total;
}

std::unique_ptr<System>
buildSystem(const ExperimentSpec &spec, BuiltWorkload &out)
{
    SystemConfig cfg = spec.sys;
    cfg.machine.totalCpus = spec.totalCpus;
    cfg.machine.appCpus = spec.appCpus;
    cfg.machine.cpusPerL2 = spec.cpusPerL2;
    cfg.machine.protocol = spec.protocol;
    cfg.machine.numaNodes = spec.numaNodes;
    cfg.machine.topology = spec.topology;
    cfg.machine.dirOccupancy = spec.dirOccupancy;

    auto system = std::make_unique<System>(cfg, spec.seed);
    if (check::checkingEnabled())
        system->enableChecking(check::defaultCheckOptions());
    if (spec.trackCommunication)
        system->memory().setCommunicationTracking(true);

    // Address-space regions for miss attribution diagnostics.
    mem::Hierarchy &hmem = system->memory();
    const jvm::Heap &heap = system->vm().heap();
    hmem.defineRegion("young-gen", heap.newGenBase(),
                      heap.newGenCapacity());
    hmem.defineRegion("kernel-data", os::KernelModel::dataBase,
                      0x1'0000'0000ULL);
    hmem.defineRegion("stacks", 0x3'0000'0000ULL, 0x1'0000'0000ULL);

    if (spec.workload == WorkloadKind::SpecJbb) {
        workload::SpecJbbParams params = spec.jbb;
        params.warehouses = spec.resolvedScale();
        out.jbb = workload::buildSpecJbb(params, system->vm(),
                                         system->forkRng());
        for (auto &thread : out.jbb->makeThreads())
            system->addProgram(std::move(thread));
    } else {
        workload::EcperfParams params = spec.ecperf;
        params.injectionRate = spec.resolvedScale();
        out.ecperf = workload::buildEcperf(params, system->vm(),
                                           system->kernel(),
                                           spec.appCpus,
                                           system->forkRng());
        hmem.defineRegion("bean-slab", out.ecperf->beanSlabBase(),
                          out.ecperf->beanSlabBytes());
        hmem.defineRegion("sessions", out.ecperf->sessionBase(),
                          out.ecperf->sessionBytes());
        for (auto &thread : out.ecperf->makeThreads())
            system->addProgram(std::move(thread));
    }
    hmem.defineRegion("old-gen", heap.oldGenBase(),
                      heap.oldGenCapacity());
    return system;
}

RunResult
measure(System &system, const ExperimentSpec &spec,
        BuiltWorkload &workload)
{
    system.run(spec.warmup);
    system.beginMeasurement();
    system.memory().resetRegionStats();
    if (workload.ecperf)
        workload.ecperf->beanCache().resetStats();
    if (spec.trackCommunication)
        system.memory().resetCommunicationTracking();
    system.run(spec.measure);

    RunResult res;
    res.seconds = system.measuredSeconds();
    res.txTotal = system.txTotal();
    const unsigned num_types =
        spec.workload == WorkloadKind::SpecJbb
            ? workload::jbbNumTxTypes
            : workload::ecperfNumTxTypes;
    for (unsigned t = 0; t < num_types; ++t)
        res.txByType.push_back(system.txCount(t));
    res.throughput = system.throughput();
    res.cpi = system.appCpi();
    res.modes = system.appModes();
    res.cache = system.appCacheStats();

    const jvm::Jvm::Stats &gc = system.vm().stats();
    res.gcMinor = gc.minorCollections;
    res.gcMajor = gc.majorCollections;
    res.gcPause = gc.totalPause;
    res.liveAfterMB = gc.liveAfterMB.count()
                          ? gc.liveAfterMB.mean()
                          : static_cast<double>(
                                system.vm().heap().oldUsed()) /
                                (1024.0 * 1024.0);
    if (workload.ecperf)
        res.beanHitRate = workload.ecperf->beanCache().hitRate();
    res.metrics = std::make_shared<sim::MetricSnapshot>(
        collectMetrics(system, spec, workload));
    // With checking armed, audit the complete cache state before the
    // system is torn down (fail-fast aborts here on a violation).
    if (check::Checker *ck = system.checker())
        ck->finalize(system.now());
    return res;
}

RunResult
runExperiment(const ExperimentSpec &spec)
{
    BuiltWorkload workload;
    auto system = buildSystem(spec, workload);
    // Record-while-running when --trace-out is configured (a no-op
    // sink attachment otherwise): recording only observes, so the
    // RunResult is byte-identical with tracing on or off.
    auto writer = beginTraceRecording(*system, spec);
    RunResult res = measure(*system, spec, workload);
    finishTraceRecording(std::move(writer), *system, spec);
    return res;
}

ExperimentSpec
repeatedSpec(const ExperimentSpec &spec, unsigned r)
{
    ExperimentSpec s = spec;
    s.seed = spec.seed + 0x1000 * (r + 1);
    return s;
}

std::vector<RunResult>
runGrid(const std::vector<ExperimentSpec> &specs)
{
    // Dedupe identical (spec, seed) points by content address: each
    // unique point simulates once (through the run cache); every
    // requester of a duplicate receives the same RunResult and shares
    // the same metrics snapshot.
    std::vector<std::size_t> firstIndex;
    std::vector<std::size_t> uniqueOf(specs.size());
    std::map<std::string, std::size_t> byKey;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        auto [it, inserted] =
            byKey.emplace(encodeSpecKey(specs[i]), firstIndex.size());
        if (inserted)
            firstIndex.push_back(i);
        uniqueOf[i] = it->second;
    }
    gridRequested += specs.size();
    gridUnique += firstIndex.size();

    std::vector<RunResult> uniqueResults(firstIndex.size());
    sim::ThreadPool::global().parallelFor(
        firstIndex.size(), [&](std::size_t u) {
            uniqueResults[u] = cachedRunExperiment(specs[firstIndex[u]]);
        });

    std::vector<RunResult> results(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i)
        results[i] = uniqueResults[uniqueOf[i]];
    return results;
}

std::vector<RunResult>
runRepeated(const ExperimentSpec &spec, unsigned runs)
{
    std::vector<ExperimentSpec> specs;
    specs.reserve(runs);
    for (unsigned r = 0; r < runs; ++r)
        specs.push_back(repeatedSpec(spec, r));
    return runGrid(specs);
}

stats::RunningStat
summarize(const std::vector<RunResult> &results,
          const std::function<double(const RunResult &)> &metric)
{
    stats::RunningStat stat;
    for (const RunResult &r : results)
        stat.add(metric(r));
    return stat;
}

} // namespace middlesim::core
