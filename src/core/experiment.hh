/**
 * @file
 * Experiment construction, measurement, and the multi-run
 * variability methodology.
 *
 * An ExperimentSpec names a workload, a machine shape and a
 * measurement interval; runExperiment() builds the system, warms it
 * up, measures a steady-state interval and returns a RunResult of
 * scalar observables. runRepeated() applies the methodology of
 * Alameldeen & Wood [2]: the same experiment is run several times
 * with perturbed seeds and every reported value carries a standard
 * deviation.
 *
 * Scaling note (documented in EXPERIMENTS.md): the JVM defaults here
 * shrink the new generation from the paper's 400 MB to 48 MB so that
 * collections occur within simulable intervals. Cache behavior is
 * unaffected (both sizes dwarf the caches); GC frequency and pause
 * fractions stay realistic; old-generation contents (which determine
 * the Figure 11 series) keep the paper's absolute sizes.
 */

#ifndef CORE_EXPERIMENT_HH
#define CORE_EXPERIMENT_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/system.hh"
#include "stats/summary.hh"
#include "workload/ecperf.hh"
#include "workload/specjbb.hh"

namespace middlesim::core
{

/** Which benchmark to run. */
enum class WorkloadKind
{
    SpecJbb,
    Ecperf,
};

/** A complete description of one measured point. */
struct ExperimentSpec
{
    WorkloadKind workload = WorkloadKind::SpecJbb;

    /** Application processor-set size (psrset). */
    unsigned appCpus = 8;
    /** Processors in the machine. */
    unsigned totalCpus = 16;
    /** CPUs per shared L2 (1 = private; Figure 16 uses 2/4/8). */
    unsigned cpusPerL2 = 1;

    /** Coherence protocol (snooping bus or directory MESI). */
    sim::CoherenceProtocol protocol = sim::CoherenceProtocol::SnoopBus;
    /** NUMA nodes (directory protocol; 1 = flat UMA machine). */
    unsigned numaNodes = 1;
    /** Node interconnect (directory protocol): ring or 2-D mesh. */
    sim::Topology topology = sim::Topology::Ring;
    /** Home in-flight slots (0 = contention-free, DESIGN.md §3.15). */
    unsigned dirOccupancy = 0;

    /** Warehouses (SPECjbb) or Orders Injection Rate (ECperf);
     *  0 selects the auto rule (warehouses = appCpus, OIR = 8). */
    unsigned scale = 0;

    sim::Tick warmup = 15'000'000;
    sim::Tick measure = 35'000'000;
    std::uint64_t seed = 1;

    /** Enable per-line communication tracking (Figures 14/15). */
    bool trackCommunication = false;

    /** Machine/JVM/workload parameter overrides. */
    SystemConfig sys;
    workload::SpecJbbParams jbb;
    workload::EcperfParams ecperf;

    ExperimentSpec()
    {
        // Time-compressed new generation (see file comment).
        sys.jvm.heap.newGenBytes = 20ULL << 20;
        sys.jvm.heap.overshootBytes = 12ULL << 20;
    }

    /** Resolved scale (warehouses / OIR) after the auto rule. */
    unsigned resolvedScale() const;
};

/** Scalar observables of one run. */
struct RunResult
{
    double seconds = 0.0;
    std::uint64_t txTotal = 0;
    std::vector<std::uint64_t> txByType;
    double throughput = 0.0;

    cpu::CpiBreakdown cpi;
    os::ModeBreakdown modes;
    mem::CacheStats cache;

    std::uint64_t gcMinor = 0;
    std::uint64_t gcMajor = 0;
    sim::Tick gcPause = 0;
    double liveAfterMB = 0.0;

    /** ECperf only: bean cache hit rate over the measured interval. */
    double beanHitRate = 0.0;

    /**
     * Full observability snapshot of the run (counters, histograms,
     * series, event journal); shared so grid result vectors stay
     * cheap to copy.
     */
    std::shared_ptr<const sim::MetricSnapshot> metrics;

    /** Instructions per completed transaction (path length). */
    double pathLength() const;

    /** Fraction of app-CPU time spent in garbage collection. */
    double gcFraction() const;
};

/** A built workload (exactly one member is set). */
struct BuiltWorkload
{
    std::unique_ptr<workload::SpecJbbCompany> jbb;
    std::unique_ptr<workload::EcperfServer> ecperf;
};

/** Construct a System and its workload threads from a spec. */
std::unique_ptr<System> buildSystem(const ExperimentSpec &spec,
                                    BuiltWorkload &out);

/** Warm up, measure, and collect results. */
RunResult measure(System &system, const ExperimentSpec &spec,
                  BuiltWorkload &workload);

/** buildSystem + measure. */
RunResult runExperiment(const ExperimentSpec &spec);

/**
 * The spec of repetition r (0-based) of an experiment: identical to
 * `spec` except for a deterministically perturbed seed. runRepeated()
 * and every figure harness derive their seeds through this single
 * function, so serial and parallel execution agree bit-for-bit.
 */
ExperimentSpec repeatedSpec(const ExperimentSpec &spec, unsigned r);

/**
 * Run every spec as an isolated simulation (its own System, its own
 * Rng stream) and return the results in submission order. Points are
 * fanned out across the process-wide thread pool (MIDDLESIM_JOBS or
 * --jobs=N; default hardware concurrency); because each run is
 * self-contained and seed-derived, the results are byte-identical to
 * serial execution for any job count.
 *
 * Identical (spec, seed) points are deduplicated by content address
 * (core/cache.hh): each unique point simulates at most once per
 * process, and duplicates share the one RunResult + metrics snapshot.
 */
std::vector<RunResult> runGrid(const std::vector<ExperimentSpec> &specs);

/** Cumulative runGrid dedupe accounting since process start / reset. */
struct GridDedupeStats
{
    std::uint64_t requested = 0;
    std::uint64_t unique = 0;
};

GridDedupeStats gridDedupeStats();
void resetGridDedupeStats();

/** Run `runs` seeds of the same spec (variability methodology). */
std::vector<RunResult> runRepeated(const ExperimentSpec &spec,
                                   unsigned runs);

/** Summarize a metric over repeated runs. */
stats::RunningStat
summarize(const std::vector<RunResult> &results,
          const std::function<double(const RunResult &)> &metric);

} // namespace middlesim::core

#endif // CORE_EXPERIMENT_HH
