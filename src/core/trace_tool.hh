/**
 * @file
 * The `middlesim-trace` command-line tool: inspect, validate, record
 * and replay `middlesim-trace-v1` reference traces.
 */

#ifndef CORE_TRACE_TOOL_HH
#define CORE_TRACE_TOOL_HH

namespace middlesim::core
{

/**
 * main() body of the middlesim-trace driver.
 *
 * Subcommands:
 *   info FILE            header, record counts, annotation breakdown
 *   validate FILE        full structural validation (exit 0 iff valid)
 *   timeline FILE        annotation timeline (GC windows, mode
 *                        switches, migrations, ...) [--limit=N]
 *   record --out=FILE    execution-driven run recorded to FILE
 *                        [--workload=specjbb|ecperf --app-cpus=N
 *                         --total-cpus=N --cpus-per-l2=N --scale=N
 *                         --seed=N --warmup=T --measure=T --track-comm]
 *   replay FILE          replay into a rebuilt hierarchy and print the
 *                        miss breakdown [--l2-kb=N --cpus-per-l2=N]
 *   sweep FILE           replay into the paper's 64KB..16MB cache
 *                        sweep (Figures 12/13)
 *   sharing FILE         replay at every shared-L2 degree dividing the
 *                        recorded machine (Figure 16 what-if)
 *
 * @return 0 on success / valid trace, 1 otherwise.
 */
int traceToolMain(int argc, char **argv);

} // namespace middlesim::core

#endif // CORE_TRACE_TOOL_HH
