/**
 * @file
 * Digitized reference data from the paper's figures.
 *
 * The paper provides no numeric tables; these series are approximate
 * digitizations of Figures 4-16 guided by the prose (e.g. "ECperf
 * achieves a peak speedup of approximately 10 on 12 processors",
 * "starts at 25% for two processors and increases rapidly to over 60%
 * for fourteen"). They define the *shape targets* the benches compare
 * against; absolute values are indicative only.
 */

#ifndef CORE_PAPER_HH
#define CORE_PAPER_HH

#include "stats/series.hh"

namespace middlesim::core::paper
{

/** Processor counts used on the x-axis of Figures 4-9. */
const std::vector<double> &cpuSweep();

/** Figure 4: throughput speedup vs processors. */
stats::Series fig4Ecperf();
stats::Series fig4SpecJbb();

/** Figure 5: execution-mode fractions (percent) vs processors. */
stats::Series fig5EcperfSystem();
stats::Series fig5EcperfIdle();
stats::Series fig5SpecJbbSystem();
stats::Series fig5SpecJbbIdle();

/** Figure 6: total CPI vs processors. */
stats::Series fig6EcperfCpi();
stats::Series fig6SpecJbbCpi();
/** Figure 6: data-stall share of the CPI (fraction). */
stats::Series fig6EcperfDataStallFrac();
stats::Series fig6SpecJbbDataStallFrac();

/** Figure 7: c2c share of data stall time (fraction) vs processors. */
stats::Series fig7EcperfC2cShare();
stats::Series fig7SpecJbbC2cShare();

/** Figure 8: cache-to-cache transfer ratio (percent of L2 misses). */
stats::Series fig8Ecperf();
stats::Series fig8SpecJbb();

/** Figure 11: live memory (MB) vs scale factor. */
stats::Series fig11Ecperf();
stats::Series fig11SpecJbb();

/** Figures 12/13: misses per 1000 instructions vs cache size (KB). */
stats::Series fig12EcperfIcache();
stats::Series fig12SpecJbbIcache();
stats::Series fig13EcperfDcache();
stats::Series fig13SpecJbb1Dcache();
stats::Series fig13SpecJbb10Dcache();
stats::Series fig13SpecJbb25Dcache();

/** Figure 14: cumulative c2c share vs fraction of touched lines. */
stats::Series fig14Ecperf();
stats::Series fig14SpecJbb();

/** Figure 16: data misses/1000 instr vs CPUs per shared 1 MB L2. */
stats::Series fig16Ecperf();
stats::Series fig16SpecJbb25();

/** Headline scalar claims from the text. */
struct Claims
{
    double ecperfCpiMin = 2.0;
    double ecperfCpiMax = 2.8;
    double jbbCpiMin = 1.8;
    double jbbCpiMax = 2.4;
    double ecperfPeakSpeedup = 10.0;
    double ecperfPeakCpus = 12.0;
    double jbbPlateauSpeedup = 7.0;
    double jbbPlateauCpus = 10.0;
    double c2cRatioAt2 = 0.25;
    double c2cRatioAt14 = 0.60;
    double idleAt10Plus = 0.25;
    double ecperfSystemAt1 = 0.05;
    double ecperfSystemAt15 = 0.30;
    double jbbTopLineC2cShare = 0.20;
    double ecperfTopLineC2cShare = 0.14;
    double jbbTop01PctC2cShare = 0.70;
    double ecperfTop01PctC2cShare = 0.56;
};

const Claims &claims();

} // namespace middlesim::core::paper

#endif // CORE_PAPER_HH
