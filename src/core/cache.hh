/**
 * @file
 * Content-addressed simulation memoization.
 *
 * Every measured point of the paper reproduction is a pure
 * deterministic function of (ExperimentSpec, seed) — the Alameldeen &
 * Wood multi-run methodology guarantees it. This module exploits
 * that: a canonical, version-stamped encoding of every spec field
 * acts as the content address of a run, and RunCache memoizes run
 * payloads under those addresses in two layers:
 *
 *  - an always-on in-process memo, so duplicate (spec, seed) points
 *    in one process simulate exactly once, and
 *  - an optional on-disk cache (--cache-dir=PATH / MIDDLESIM_CACHE,
 *    `middlesim-cache-v2` file format), so whole figure drivers can
 *    re-run near-instantly across processes.
 *
 * The payload codecs round-trip bit-exactly (doubles travel as
 * IEEE-754 bit patterns), so a cache hit is byte-identical to a
 * fresh simulation — tests/test_cache.cpp enforces this. Corrupt,
 * truncated or version-mismatched cache files are treated as misses,
 * never as errors.
 */

#ifndef CORE_CACHE_HH
#define CORE_CACHE_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "core/experiment.hh"
#include "sim/serialize.hh"

namespace middlesim::core
{

/**
 * Cache schema identifier. Bump whenever the spec encoding, a payload
 * codec, or any simulation behavior changes in a way that invalidates
 * stored results (see EXPERIMENTS.md "When to wipe the cache"); old
 * files then read as misses.
 */
inline constexpr const char *cacheSchemaVersion = "middlesim-cache-v3";

/**
 * Canonical, version-stamped structural encoding of an ExperimentSpec:
 * every field of the spec and every nested SystemConfig / machine /
 * latency / core / JVM / kernel / workload parameter, in a fixed
 * order. Two specs have equal keys iff every field is equal; the key
 * is the content address of the simulation.
 */
std::string encodeSpecKey(const ExperimentSpec &spec);

/** File name of a cached payload: "<kind>-<fnv1a64 hex>.msc". */
std::string cacheFileName(const std::string &kind,
                          const std::string &key);

/** Exact (bit-for-bit) snapshot codec, for payloads that embed one. */
void encodeSnapshot(sim::ByteWriter &w, const sim::MetricSnapshot &s);
sim::MetricSnapshot decodeSnapshot(sim::ByteReader &r);

/** Exact RunResult codec (scalars, breakdowns, metrics snapshot). */
std::string encodeRunResult(const RunResult &r);
bool decodeRunResult(const std::string &payload, RunResult &out);

/**
 * Two-layer content-addressed payload store. Payloads are opaque
 * byte strings produced by the codecs above; keys are canonical
 * encodings (full keys are stored and verified, so a 64-bit file-name
 * hash collision degrades to a miss, never to a wrong result).
 */
class RunCache
{
  public:
    /** The process-wide cache used by the experiment runner. */
    static RunCache &global();

    /**
     * Enable the disk layer rooted at `dir` (created on demand);
     * empty disables it. The in-process memo is always active.
     */
    void setDiskDir(std::string dir);
    std::string diskDir() const;

    /** Memory-then-disk lookup. @return true and fill `payload`. */
    bool fetch(const std::string &kind, const std::string &key,
               std::string &payload);

    /** Store in the memo and, when enabled, on disk (atomically). */
    void store(const std::string &kind, const std::string &key,
               const std::string &payload);

    /** Drop every memoized payload (tests; disk is untouched). */
    void clearMemory();

    struct Stats
    {
        std::uint64_t memoryHits = 0;
        std::uint64_t diskHits = 0;
        std::uint64_t misses = 0;
        std::uint64_t stores = 0;
        /**
         * Misses where a disk entry existed but failed validation
         * (truncated write observed mid-read by another process,
         * checksum mismatch, foreign schema). The caller re-simulates
         * and store() atomically rewrites the entry, so a corrupt
         * artifact heals on the next touch — the fabric relies on
         * this to share one artifact plane between processes.
         */
        std::uint64_t corruptMisses = 0;
    };

    Stats stats() const;
    void resetStats();

  private:
    enum class DiskLoad
    {
        Hit,
        Absent,
        Corrupt,
    };

    DiskLoad loadDisk(const std::string &kind, const std::string &key,
                      std::string &payload) const;
    void storeDisk(const std::string &kind, const std::string &key,
                   const std::string &payload) const;

    mutable std::mutex mutex_;
    std::string dir_;
    std::map<std::pair<std::string, std::string>, std::string> memo_;
    Stats stats_;
};

/**
 * runExperiment() through the content-addressed cache: compute the
 * spec key, fetch (memo, then disk), simulate on a miss and store.
 * Results are byte-identical to an uncached runExperiment() call.
 */
RunResult cachedRunExperiment(const ExperimentSpec &spec);

} // namespace middlesim::core

#endif // CORE_CACHE_HH
