/**
 * @file
 * Figure-reproduction harnesses.
 *
 * One function per evaluation figure of the paper (Figures 4-16;
 * Figures 1-3 are block diagrams). Each returns the measured series,
 * the digitized paper series, a printable table, and the shape checks
 * that encode the paper's qualitative conclusions for that figure.
 * The bench binaries, the integration tests and the examples all
 * share these harnesses.
 */

#ifndef CORE_FIGURES_HH
#define CORE_FIGURES_HH

#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/metrics_io.hh"
#include "stats/series.hh"
#include "stats/table.hh"

namespace middlesim::core
{

/** Effort knobs shared by all figure harnesses. */
struct FigureOptions
{
    /** Runs per measured point (variability methodology). */
    unsigned runs = 3;
    /** Scales warmup/measure intervals (tests use < 1). */
    double timeScale = 1.0;
    std::uint64_t seed = 1;

    /** Coherence protocol applied to every measured point. */
    sim::CoherenceProtocol protocol = sim::CoherenceProtocol::SnoopBus;
    /** NUMA node count (directory protocol; 1 = flat UMA machine). */
    unsigned numaNodes = 1;
    /** Interconnect topology (directory protocol; ring is default). */
    sim::Topology topology = sim::Topology::Ring;
    /** Home occupancy slots (0 = contention-free directory homes). */
    unsigned dirOccupancy = 0;

    /**
     * Honors MIDDLESIM_RUNS, MIDDLESIM_QUICK (=1: single run, 0.5x
     * intervals), MIDDLESIM_TIMESCALE, MIDDLESIM_PROTOCOL
     * (snoop|directory), MIDDLESIM_NUMA_NODES, MIDDLESIM_TOPOLOGY
     * (ring|mesh) and MIDDLESIM_DIR_OCCUPANCY environment variables.
     */
    static FigureOptions fromEnv();
};

/** One qualitative conclusion of the paper, checked on our data. */
struct ShapeCheck
{
    std::string what;
    bool pass = false;
    std::string detail;
};

/** Everything a figure reproduction produces. */
struct FigureResult
{
    std::string id;
    std::string title;
    std::vector<stats::Series> measured;
    std::vector<stats::Series> paperRef;
    stats::Table table;
    std::vector<ShapeCheck> checks;

    /**
     * Per-grid-point metric snapshots of every simulation the figure
     * consumed, keyed by pointName(). Serialized by --metrics-out.
     */
    MetricsMap metricsByPoint;

    bool
    allPass() const
    {
        for (const auto &c : checks) {
            if (!c.pass)
                return false;
        }
        return true;
    }
};

FigureResult runFig04(const FigureOptions &opt = {});
FigureResult runFig05(const FigureOptions &opt = {});
FigureResult runFig06(const FigureOptions &opt = {});
FigureResult runFig07(const FigureOptions &opt = {});
FigureResult runFig08(const FigureOptions &opt = {});
FigureResult runFig09(const FigureOptions &opt = {});
FigureResult runFig10(const FigureOptions &opt = {});
FigureResult runFig11(const FigureOptions &opt = {});
FigureResult runFig12(const FigureOptions &opt = {});
FigureResult runFig13(const FigureOptions &opt = {});
FigureResult runFig14(const FigureOptions &opt = {});
FigureResult runFig15(const FigureOptions &opt = {});
FigureResult runFig16(const FigureOptions &opt = {});

/**
 * The scaling sweep shared by Figures 4-9: both workloads measured at
 * the paper's processor counts. Cached per (options) within one
 * process so the six figures don't redo identical simulations.
 */
struct ScalingPoint
{
    unsigned cpus = 0;
    std::vector<RunResult> ecperf;
    std::vector<RunResult> jbb;
};

const std::vector<ScalingPoint> &scalingSweep(const FigureOptions &opt);

/** Metric snapshots of the scaling sweep's grid points. */
const MetricsMap &scalingSweepMetrics(const FigureOptions &opt);

} // namespace middlesim::core

#endif // CORE_FIGURES_HH
