/**
 * @file
 * Figure harnesses 11-16 (memory footprint, cache sweeps,
 * communication footprints, shared caches).
 */

#include <cmath>
#include <future>
#include <memory>
#include <numeric>
#include <optional>
#include <sstream>

#include "core/cache.hh"
#include "core/figures.hh"
#include "core/figures_internal.hh"
#include "core/paper.hh"
#include "core/trace_run.hh"
#include "mem/sweep.hh"
#include "sim/log.hh"
#include "sim/threadpool.hh"
#include "trace/reader.hh"

namespace middlesim::core
{

namespace
{

using stats::Series;
using stats::Table;

std::string
fmt(double v, int prec = 2)
{
    return Table::num(v, prec);
}

ShapeCheck
check(const std::string &what, bool pass, const std::string &detail)
{
    return {what, pass, detail};
}

ExperimentSpec
baseSpec(WorkloadKind kind, unsigned cpus, const FigureOptions &opt)
{
    ExperimentSpec spec;
    spec.workload = kind;
    spec.appCpus = cpus;
    spec.seed = opt.seed;
    spec.protocol = opt.protocol;
    spec.numaNodes = opt.numaNodes;
    spec.warmup = static_cast<sim::Tick>(
        static_cast<double>(spec.warmup) * opt.timeScale);
    spec.measure = static_cast<sim::Tick>(
        static_cast<double>(spec.measure) * opt.timeScale);
    return spec;
}

/** The Figure 11 experiment configuration for one scale point. */
ExperimentSpec
liveSpec(WorkloadKind kind, unsigned scale, const FigureOptions &opt)
{
    ExperimentSpec spec = baseSpec(kind, 8, opt);
    spec.scale = scale;
    return spec;
}

/** Run one scale point until at least `min_gcs` collections happen. */
LivePoint
liveAfterGc(WorkloadKind kind, unsigned scale, const FigureOptions &opt)
{
    const ExperimentSpec spec = liveSpec(kind, scale, opt);
    BuiltWorkload workload;
    auto system = buildSystem(spec, workload);
    system->run(spec.warmup);
    system->beginMeasurement();
    const unsigned min_gcs = 3;
    for (unsigned chunk = 0; chunk < 12; ++chunk) {
        system->run(spec.measure);
        if (system->vm().stats().log.size() >= min_gcs)
            break;
    }
    LivePoint out;
    out.point = pointName(spec);
    out.snap = collectMetrics(*system, spec, workload);
    const auto &st = system->vm().stats();
    if (st.liveAfterMB.count() == 0) {
        // No collection happened (tiny scale): report the workload's
        // live data directly.
        const std::uint64_t live = workload.jbb
            ? workload.jbb->liveBytes()
            : workload.ecperf->liveBytes();
        out.mb = static_cast<double>(live) / (1024.0 * 1024.0);
    } else {
        out.mb = st.liveAfterMB.mean();
    }
    return out;
}

/** The Figure 12/13 uniprocessor sweep configuration. */
ExperimentSpec
sweepPointSpec(WorkloadKind kind, unsigned scale,
               const FigureOptions &opt)
{
    ExperimentSpec spec = baseSpec(kind, 1, opt);
    spec.totalCpus = 1; // uniprocessor full-system configuration
    spec.numaNodes = 1; // a one-CPU machine is a single node
    spec.scale = scale;
    // A single CPU progresses slowly; use a longer interval so large
    // caches see enough references.
    spec.measure = static_cast<sim::Tick>(
        static_cast<double>(spec.measure) * 3.0);
    return spec;
}

/** Uniprocessor full-system run feeding the multi-size cache sweep. */
SweepOutcome
runSweepPoint(WorkloadKind kind, unsigned scale,
              const FigureOptions &opt)
{
    const ExperimentSpec spec = sweepPointSpec(kind, scale, opt);
    mem::SweepSimulator sweep{mem::SweepSimulator::paperSweep()};

    BuiltWorkload workload;
    auto system = buildSystem(spec, workload);
    auto writer = beginTraceRecording(*system, spec);
    // Warm both the hierarchy and the sweep caches, then count only
    // the measured interval.
    system->memory().setSweepTap(&sweep);
    system->run(spec.warmup);
    sweep.resetCounters();
    system->beginMeasurement();
    system->run(spec.measure);
    sweep.countInstructions(system->appCpi().instructions);
    system->memory().setSweepTap(nullptr);
    finishTraceRecording(std::move(writer), *system, spec);

    SweepOutcome out;
    out.icache = sweep.icacheResults();
    out.dcache = sweep.dcacheResults();
    out.instructions = sweep.instructions();
    out.point = pointName(spec);
    out.snap = collectMetrics(*system, spec, workload);
    return out;
}

/**
 * Satisfy a Figure 12/13 sweep point from a --trace-in recording.
 * Returns nothing when replay is not configured, no recording of
 * this spec exists, or the file does not validate (execution-driven
 * fallback). Bypasses the RunCache entirely: the replayed curves are
 * bit-identical to the execution-driven ones, but the metrics
 * snapshot of a replay is minimal (no CPU/OS/JVM layers ran), so it
 * must never be memoized as an execution result.
 */
std::optional<SweepOutcome>
sweepOutcomeFromTrace(WorkloadKind kind, unsigned scale,
                      const FigureOptions &opt)
{
    if (traceInDir().empty())
        return std::nullopt;
    const ExperimentSpec spec = sweepPointSpec(kind, scale, opt);
    const std::string path = traceFilePath(traceInDir(), spec);
    std::string data;
    if (!trace::readTraceFile(path, data))
        return std::nullopt;
    SweepReplayOutcome replay = replayTraceSweep(std::move(data));
    if (!replay.valid) {
        warn("trace: '", path, "' invalid (", replay.error,
             "); falling back to execution");
        return std::nullopt;
    }
    if (replay.header.specKey != encodeSpecKey(spec)) {
        warn("trace: '", path,
             "' records a different spec; falling back to execution");
        return std::nullopt;
    }
    SweepOutcome out;
    out.icache = std::move(replay.icache);
    out.dcache = std::move(replay.dcache);
    out.instructions = replay.instructions;
    out.point = pointName(spec);
    out.snap.counters["trace.replay.refs"] = replay.counts.refs;
    out.snap.counters["trace.replay.annotations"] =
        replay.counts.annotations;
    return out;
}

/** Shared-cache configuration point for Figure 16. */
ExperimentSpec
sharedCacheSpec(WorkloadKind kind, unsigned scale,
                unsigned cpus_per_l2, const FigureOptions &opt)
{
    ExperimentSpec spec = baseSpec(kind, 8, opt);
    spec.totalCpus = 8;
    spec.cpusPerL2 = cpus_per_l2;
    spec.scale = scale;
    // The sharing sweep varies the L2 group count (8 CPUs at degrees
    // 1..8), so a fixed --numa-nodes cannot divide every point; keep
    // the largest topology consistent with each geometry.
    spec.numaNodes = std::gcd(spec.numaNodes,
                              spec.totalCpus / spec.cpusPerL2);
    return spec;
}

double
dataMpki(const RunResult &r)
{
    return 1000.0 * static_cast<double>(r.cache.dataMisses) /
           static_cast<double>(r.cpi.instructions);
}

// ---------------------------------------------------------------------
// Leaf payload codecs (bit-exact; see core/cache.hh)
// ---------------------------------------------------------------------

std::string
encodeLivePoint(const LivePoint &p)
{
    sim::ByteWriter w;
    w.f64(p.mb);
    w.str(p.point);
    encodeSnapshot(w, p.snap);
    return w.take();
}

bool
decodeLivePoint(const std::string &payload, LivePoint &out)
{
    sim::ByteReader r(payload);
    LivePoint p;
    p.mb = r.f64();
    p.point = r.str();
    p.snap = decodeSnapshot(r);
    if (!r.atEnd())
        return false;
    out = std::move(p);
    return true;
}

void
encodeSweepResults(sim::ByteWriter &w,
                   const std::vector<mem::SweepResult> &results)
{
    w.u64(results.size());
    for (const auto &res : results) {
        w.u64(res.params.sizeBytes);
        w.u32(res.params.assoc);
        w.u32(res.params.blockBytes);
        w.u64(res.accesses);
        w.u64(res.misses);
    }
}

std::vector<mem::SweepResult>
decodeSweepResults(sim::ByteReader &r)
{
    std::vector<mem::SweepResult> results;
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; r.ok() && i < n; ++i) {
        mem::SweepResult res;
        res.params.sizeBytes = r.u64();
        res.params.assoc = r.u32();
        res.params.blockBytes = r.u32();
        res.accesses = r.u64();
        res.misses = r.u64();
        results.push_back(res);
    }
    return results;
}

std::string
encodeSweepOutcome(const SweepOutcome &o)
{
    sim::ByteWriter w;
    encodeSweepResults(w, o.icache);
    encodeSweepResults(w, o.dcache);
    w.u64(o.instructions);
    w.str(o.point);
    encodeSnapshot(w, o.snap);
    return w.take();
}

bool
decodeSweepOutcome(const std::string &payload, SweepOutcome &out)
{
    sim::ByteReader r(payload);
    SweepOutcome o;
    o.icache = decodeSweepResults(r);
    o.dcache = decodeSweepResults(r);
    o.instructions = r.u64();
    o.point = r.str();
    o.snap = decodeSnapshot(r);
    if (!r.atEnd())
        return false;
    out = std::move(o);
    return true;
}

std::string
encodeCommPoint(const CommPoint &p)
{
    sim::ByteWriter w;
    w.vecU64(p.curve.counts());
    w.u64(p.touchedLines);
    w.str(p.point);
    encodeSnapshot(w, p.snap);
    return w.take();
}

bool
decodeCommPoint(const std::string &payload, CommPoint &out)
{
    sim::ByteReader r(payload);
    CommPoint p;
    p.curve = stats::ConcentrationCurve(r.vecU64());
    p.touchedLines = r.u64();
    p.point = r.str();
    p.snap = decodeSnapshot(r);
    if (!r.atEnd())
        return false;
    out = std::move(p);
    return true;
}

/** fetch-decode-or-simulate-and-store, shared by the leaf kinds. */
template <typename T, typename Decode, typename Encode, typename Run>
T
throughCache(const char *kind, const ExperimentSpec &spec,
             Decode decode, Encode encode, Run run)
{
    const std::string key = encodeSpecKey(spec);
    RunCache &cache = RunCache::global();
    std::string payload;
    if (cache.fetch(kind, key, payload)) {
        T cached;
        if (decode(payload, cached))
            return cached;
        warn("cache: undecodable '", kind,
             "' payload; re-simulating");
    }
    T fresh = run();
    cache.store(kind, key, encode(fresh));
    return fresh;
}

} // namespace

LivePoint
cachedLivePoint(WorkloadKind kind, unsigned scale,
                const FigureOptions &opt)
{
    return throughCache<LivePoint>(
        "live", liveSpec(kind, scale, opt), decodeLivePoint,
        encodeLivePoint,
        [&] { return liveAfterGc(kind, scale, opt); });
}

SweepOutcome
cachedSweepOutcome(WorkloadKind kind, unsigned scale,
                   const FigureOptions &opt)
{
    if (auto replayed = sweepOutcomeFromTrace(kind, scale, opt))
        return std::move(*replayed);
    return throughCache<SweepOutcome>(
        "sweep", sweepPointSpec(kind, scale, opt), decodeSweepOutcome,
        encodeSweepOutcome,
        [&] { return runSweepPoint(kind, scale, opt); });
}

// ---------------------------------------------------------------------
// Figure 11: memory use vs scale factor
// ---------------------------------------------------------------------

const std::vector<unsigned> &
fig11JbbScales()
{
    static const std::vector<unsigned> scales = {1, 5, 10, 15, 20, 25,
                                                 30, 35, 40};
    return scales;
}

const std::vector<unsigned> &
fig11EcperfScales()
{
    static const std::vector<unsigned> scales = {1, 2, 4, 6, 10, 15,
                                                 20, 30, 40};
    return scales;
}

FigureResult
runFig11(const FigureOptions &opt)
{
    FigureResult fig;
    fig.id = "fig11";
    fig.title = "Live memory after collection vs scale factor (MB)";

    const std::vector<unsigned> &jbb_scales = fig11JbbScales();
    const std::vector<unsigned> &ec_scales = fig11EcperfScales();

    // Every scale point is an independent run: fan them all out.
    sim::ThreadPool &pool = sim::ThreadPool::global();
    std::vector<std::future<LivePoint>> jbb_f, ec_f;
    for (std::size_t i = 0; i < jbb_scales.size(); ++i) {
        const unsigned js = jbb_scales[i], es = ec_scales[i];
        jbb_f.push_back(pool.submit([js, opt] {
            return cachedLivePoint(WorkloadKind::SpecJbb, js, opt);
        }));
        ec_f.push_back(pool.submit([es, opt] {
            return cachedLivePoint(WorkloadKind::Ecperf, es, opt);
        }));
    }

    Series jbb("specjbb"), ec("ecperf");
    Table table({"scale", "specjbb(MB)", "ecperf(MB)", "paper-jbb",
                 "paper-ec"});
    for (std::size_t i = 0; i < jbb_scales.size(); ++i) {
        const LivePoint j = jbb_f[i].get();
        const LivePoint e = ec_f[i].get();
        fig.metricsByPoint.emplace(j.point, j.snap);
        fig.metricsByPoint.emplace(e.point, e.snap);
        jbb.add(jbb_scales[i], j.mb);
        ec.add(ec_scales[i], e.mb);
        table.addRow({fmt(jbb_scales[i], 0), fmt(j.mb, 0), fmt(e.mb, 0),
                      fmt(paper::fig11SpecJbb().yAt(jbb_scales[i]), 0),
                      fmt(paper::fig11Ecperf().yAt(ec_scales[i]), 0)});
    }

    // Linearity of SPECjbb growth between 5 and 25 warehouses.
    const double slope_lo = (jbb.yAt(15) - jbb.yAt(5)) / 10.0;
    const double slope_hi = (jbb.yAt(25) - jbb.yAt(15)) / 10.0;
    fig.checks.push_back(check(
        "SPECjbb memory grows linearly with warehouses",
        slope_lo > 2.0 && std::abs(slope_hi - slope_lo) <
                              0.5 * std::max(slope_lo, slope_hi),
        "slope 5-15=" + fmt(slope_lo, 1) + " MB/wh, 15-25=" +
            fmt(slope_hi, 1) + " MB/wh"));
    fig.checks.push_back(check(
        "SPECjbb growth breaks beyond ~30 warehouses (compaction)",
        jbb.yAt(35) < jbb.yAt(30) * 1.05,
        "live(30)=" + fmt(jbb.yAt(30), 0) + " live(35)=" +
            fmt(jbb.yAt(35), 0)));
    const double ec_late = ec.yAt(40) - ec.yAt(10);
    const double ec_early = ec.yAt(6) - ec.yAt(1);
    fig.checks.push_back(check(
        "ECperf memory saturates around injection rate ~6",
        ec_early > 2.0 * std::abs(ec_late),
        "rise(1->6)=" + fmt(ec_early, 0) + " MB, rise(10->40)=" +
            fmt(ec_late, 0) + " MB"));

    fig.measured = {jbb, ec};
    fig.paperRef = {paper::fig11SpecJbb(), paper::fig11Ecperf()};
    fig.table = table;
    return fig;
}

// ---------------------------------------------------------------------
// Figures 12/13: instruction and data cache miss rates
// ---------------------------------------------------------------------

namespace
{

struct SweepSet
{
    SweepOutcome ecperf;
    SweepOutcome jbb1;
    SweepOutcome jbb10;
    SweepOutcome jbb25;

    MetricsMap
    metrics() const
    {
        MetricsMap map;
        for (const SweepOutcome *o : {&ecperf, &jbb1, &jbb10, &jbb25})
            map.emplace(o->point, o->snap);
        return map;
    }
};

/** Run all four uniprocessor sweeps once per options. */
SweepSet &
sweepSet(const FigureOptions &opt)
{
    static std::unique_ptr<SweepSet> cached;
    static std::uint64_t cached_seed = ~0ULL;
    static long cached_scale = -1;
    const long scale_key = std::lround(opt.timeScale * 1000);
    if (cached && cached_seed == opt.seed &&
        cached_scale == scale_key) {
        return *cached;
    }
    cached = std::make_unique<SweepSet>();
    cached_seed = opt.seed;
    cached_scale = scale_key;
    // The four uniprocessor sweeps are independent simulations; run
    // them concurrently.
    sim::ThreadPool &pool = sim::ThreadPool::global();
    SweepSet &set = *cached;
    std::vector<std::future<void>> points;
    points.push_back(pool.submit([&set, opt] {
        set.ecperf = cachedSweepOutcome(WorkloadKind::Ecperf, 8, opt);
    }));
    points.push_back(pool.submit([&set, opt] {
        set.jbb1 = cachedSweepOutcome(WorkloadKind::SpecJbb, 1, opt);
    }));
    points.push_back(pool.submit([&set, opt] {
        set.jbb10 = cachedSweepOutcome(WorkloadKind::SpecJbb, 10, opt);
    }));
    points.push_back(pool.submit([&set, opt] {
        set.jbb25 = cachedSweepOutcome(WorkloadKind::SpecJbb, 25, opt);
    }));
    for (auto &f : points)
        f.get();
    return *cached;
}

} // namespace

FigureResult
runFig12(const FigureOptions &opt)
{
    SweepSet &set = sweepSet(opt);

    FigureResult fig;
    fig.id = "fig12";
    fig.title = "Instruction cache misses per 1000 instructions";
    fig.metricsByPoint = set.metrics();

    Series ec("ecperf"), j1("specjbb-1"), j10("specjbb-10"),
        j25("specjbb-25");
    Table table({"size(KB)", "ecperf", "jbb-1", "jbb-10", "jbb-25",
                 "paper-ec", "paper-jbb"});
    const auto &configs = set.ecperf.icache;
    for (std::size_t i = 0; i < configs.size(); ++i) {
        const double kb =
            static_cast<double>(configs[i].params.sizeBytes) / 1024.0;
        const double e = set.ecperf.imissPer1000(i);
        const double a = set.jbb1.imissPer1000(i);
        const double b = set.jbb10.imissPer1000(i);
        const double c = set.jbb25.imissPer1000(i);
        ec.add(kb, e);
        j1.add(kb, a);
        j10.add(kb, b);
        j25.add(kb, c);
        table.addRow({fmt(kb, 0), fmt(e, 3), fmt(a, 3), fmt(b, 3),
                      fmt(c, 3),
                      fmt(paper::fig12EcperfIcache().yAt(kb), 3),
                      fmt(paper::fig12SpecJbbIcache().yAt(kb), 3)});
    }

    fig.checks.push_back(check(
        "ECperf instruction misses exceed SPECjbb's at 256 KB",
        ec.yAt(256) > 1.8 * j10.yAt(256),
        "ec=" + fmt(ec.yAt(256), 2) + " jbb-10=" +
            fmt(j10.yAt(256), 2)));
    fig.checks.push_back(check(
        "instruction misses are small (< ~1/1000) at >= 1 MB",
        ec.yAt(1024) < 1.3 && j25.yAt(1024) < 1.0,
        "ec(1MB)=" + fmt(ec.yAt(1024), 2) + " jbb-25(1MB)=" +
            fmt(j25.yAt(1024), 2)));
    fig.checks.push_back(check(
        "miss rate decreases monotonically with cache size",
        [&] {
            for (std::size_t i = 1; i < ec.points.size(); ++i) {
                if (ec.points[i].y > ec.points[i - 1].y + 0.01)
                    return false;
            }
            return true;
        }(),
        "ecperf curve"));

    fig.measured = {ec, j1, j10, j25};
    fig.paperRef = {paper::fig12EcperfIcache(),
                    paper::fig12SpecJbbIcache()};
    fig.table = table;
    return fig;
}

FigureResult
runFig13(const FigureOptions &opt)
{
    SweepSet &set = sweepSet(opt);

    FigureResult fig;
    fig.id = "fig13";
    fig.title = "Data cache misses per 1000 instructions";
    fig.metricsByPoint = set.metrics();

    Series ec("ecperf"), j1("specjbb-1"), j10("specjbb-10"),
        j25("specjbb-25");
    Table table({"size(KB)", "ecperf", "jbb-1", "jbb-10", "jbb-25",
                 "paper-ec", "paper-jbb25"});
    const auto &configs = set.ecperf.dcache;
    for (std::size_t i = 0; i < configs.size(); ++i) {
        const double kb =
            static_cast<double>(configs[i].params.sizeBytes) / 1024.0;
        const double e = set.ecperf.dmissPer1000(i);
        const double a = set.jbb1.dmissPer1000(i);
        const double b = set.jbb10.dmissPer1000(i);
        const double c = set.jbb25.dmissPer1000(i);
        ec.add(kb, e);
        j1.add(kb, a);
        j10.add(kb, b);
        j25.add(kb, c);
        table.addRow({fmt(kb, 0), fmt(e, 3), fmt(a, 3), fmt(b, 3),
                      fmt(c, 3),
                      fmt(paper::fig13EcperfDcache().yAt(kb), 3),
                      fmt(paper::fig13SpecJbb25Dcache().yAt(kb), 3)});
    }

    fig.checks.push_back(check(
        "SPECjbb data misses grow with the warehouse count",
        j25.yAt(1024) > j10.yAt(1024) && j10.yAt(1024) > j1.yAt(1024),
        "1MB: jbb-1=" + fmt(j1.yAt(1024), 2) + " jbb-10=" +
            fmt(j10.yAt(1024), 2) + " jbb-25=" +
            fmt(j25.yAt(1024), 2)));
    // Residual gap (EXPERIMENTS.md): the paper reports ~30% growth
    // from 1 to 25 warehouses; our per-transaction reference stream
    // has a larger scale-independent floor, so the gradient is
    // present but shallower.
    fig.checks.push_back(check(
        "SPECjbb data misses grow monotonically 1 -> 25 warehouses",
        j25.yAt(2048) > 1.03 * j1.yAt(2048) &&
            j25.yAt(1024) > j10.yAt(1024) &&
            j10.yAt(1024) > j1.yAt(1024),
        "ratio@2MB=" + fmt(j25.yAt(2048) / std::max(j1.yAt(2048), 1e-9),
                           2)));
    fig.checks.push_back(check(
        "ECperf's data miss rate is below SPECjbb-1's",
        ec.yAt(1024) < j1.yAt(1024),
        "1MB: ec=" + fmt(ec.yAt(1024), 2) + " jbb-1=" +
            fmt(j1.yAt(1024), 2)));
    fig.checks.push_back(check(
        "data misses fall below ~2/1000 at >= 1 MB",
        ec.yAt(1024) < 2.5 && j25.yAt(1024) < 3.5,
        "ec=" + fmt(ec.yAt(1024), 2) + " jbb-25=" +
            fmt(j25.yAt(1024), 2)));

    fig.measured = {ec, j1, j10, j25};
    fig.paperRef = {paper::fig13EcperfDcache(),
                    paper::fig13SpecJbb1Dcache(),
                    paper::fig13SpecJbb10Dcache(),
                    paper::fig13SpecJbb25Dcache()};
    fig.table = table;
    return fig;
}

// ---------------------------------------------------------------------
// Figures 14/15: communication footprint
// ---------------------------------------------------------------------

namespace
{

/** The Figure 14/15 communication-tracking configuration. */
ExperimentSpec
commSpec(WorkloadKind kind, unsigned cpus, unsigned scale,
         const FigureOptions &opt)
{
    ExperimentSpec spec = baseSpec(kind, cpus, opt);
    spec.scale = scale;
    spec.trackCommunication = true;
    spec.measure = static_cast<sim::Tick>(
        static_cast<double>(spec.measure) * 1.5);
    return spec;
}

CommPoint
commFootprint(WorkloadKind kind, unsigned cpus, unsigned scale,
              const FigureOptions &opt)
{
    const ExperimentSpec spec = commSpec(kind, cpus, scale, opt);
    BuiltWorkload workload;
    auto system = buildSystem(spec, workload);
    const RunResult res = measure(*system, spec, workload);
    CommPoint point;
    point.curve = system->memory().c2cPerLine().concentration();
    point.touchedLines = system->memory().touchedLines();
    point.point = pointName(spec);
    point.snap = *res.metrics;
    return point;
}

struct CommSet
{
    CommPoint jbb;
    CommPoint ec;
};

/** Both communication-tracking runs, computed concurrently once. */
CommSet &
commSet(const FigureOptions &opt)
{
    static std::unique_ptr<CommSet> cached;
    if (!cached) {
        cached = std::make_unique<CommSet>();
        sim::ThreadPool &pool = sim::ThreadPool::global();
        auto jbb_f = pool.submit([opt] {
            return cachedCommFootprint(WorkloadKind::SpecJbb, 15, 15,
                                       opt);
        });
        // The paper binds the ECperf application server to 8 of the
        // 16 processors and filters to those.
        auto ec_f = pool.submit([opt] {
            return cachedCommFootprint(WorkloadKind::Ecperf, 8, 8,
                                       opt);
        });
        cached->jbb = jbb_f.get();
        cached->ec = ec_f.get();
    }
    return *cached;
}

CommPoint &
jbbComm(const FigureOptions &opt)
{
    return commSet(opt).jbb;
}

CommPoint &
ecComm(const FigureOptions &opt)
{
    return commSet(opt).ec;
}

} // namespace

CommPoint
cachedCommFootprint(WorkloadKind kind, unsigned cpus, unsigned scale,
                    const FigureOptions &opt)
{
    return throughCache<CommPoint>(
        "comm", commSpec(kind, cpus, scale, opt), decodeCommPoint,
        encodeCommPoint,
        [&] { return commFootprint(kind, cpus, scale, opt); });
}

FigureResult
runFig14(const FigureOptions &opt)
{
    const CommPoint &jbb = jbbComm(opt);
    const CommPoint &ec = ecComm(opt);

    FigureResult fig;
    fig.id = "fig14";
    fig.title = "Distribution of c2c transfers vs % of lines touched";
    fig.metricsByPoint.emplace(jbb.point, jbb.snap);
    fig.metricsByPoint.emplace(ec.point, ec.snap);

    // x = fraction of *touched* lines (communicating lines are a
    // subset); y = cumulative share of all c2c transfers.
    const std::vector<double> fractions = {0.0001, 0.0005, 0.001,
                                           0.005, 0.01, 0.05, 0.1,
                                           0.25, 0.5, 1.0};
    Series jbb_s("specjbb"), ec_s("ecperf");
    Table table({"frac-of-touched", "specjbb", "ecperf"});
    for (double f : fractions) {
        auto shareAt = [&](const CommPoint &p) {
            const auto k = static_cast<std::size_t>(
                std::ceil(f * static_cast<double>(p.touchedLines)));
            return p.curve.shareOfTopK(std::max<std::size_t>(k, 1));
        };
        const double j = shareAt(jbb);
        const double e = shareAt(ec);
        jbb_s.add(f, j);
        ec_s.add(f, e);
        table.addRow({fmt(f, 4), fmt(j, 3), fmt(e, 3)});
    }

    const double j_top = jbb.curve.maxShare();
    const double e_top = ec.curve.maxShare();
    const double j_01 = jbb_s.yAt(0.001);
    const double e_01 = ec_s.yAt(0.001);
    fig.checks.push_back(check(
        "SPECjbb's hottest line carries a larger share than ECperf's",
        j_top > e_top,
        "jbb top=" + fmt(100 * j_top, 1) + "% ec top=" +
            fmt(100 * e_top, 1) + "%"));
    fig.checks.push_back(check(
        "top 0.1% of lines: SPECjbb more concentrated than ECperf",
        j_01 > e_01,
        "jbb=" + fmt(100 * j_01, 1) + "% ec=" + fmt(100 * e_01, 1) +
            "%"));
    const double jbb_all_frac =
        static_cast<double>(jbb.curve.numKeys()) /
        static_cast<double>(std::max<std::uint64_t>(jbb.touchedLines,
                                                    1));
    const double ec_all_frac =
        static_cast<double>(ec.curve.numKeys()) /
        static_cast<double>(std::max<std::uint64_t>(ec.touchedLines,
                                                    1));
    fig.checks.push_back(check(
        "ECperf communication spreads over more of its touched lines",
        ec_all_frac > jbb_all_frac,
        "jbb frac=" + fmt(jbb_all_frac, 3) + " ec frac=" +
            fmt(ec_all_frac, 3)));

    fig.measured = {jbb_s, ec_s};
    fig.paperRef = {paper::fig14SpecJbb(), paper::fig14Ecperf()};
    fig.table = table;
    return fig;
}

FigureResult
runFig15(const FigureOptions &opt)
{
    const CommPoint &jbb = jbbComm(opt);
    const CommPoint &ec = ecComm(opt);

    FigureResult fig;
    fig.id = "fig15";
    fig.title =
        "Distribution of c2c transfers vs absolute lines (64 B)";
    fig.metricsByPoint.emplace(jbb.point, jbb.snap);
    fig.metricsByPoint.emplace(ec.point, ec.snap);

    const std::vector<double> shares = {0.1, 0.2, 0.3, 0.4, 0.5,
                                        0.6, 0.7, 0.8, 0.9, 1.0};
    Series jbb_s("specjbb"), ec_s("ecperf");
    Table table({"share-of-c2c", "specjbb-lines", "ecperf-lines"});
    for (double s : shares) {
        const double j =
            static_cast<double>(jbb.curve.keysForShare(s));
        const double e = static_cast<double>(ec.curve.keysForShare(s));
        jbb_s.add(j, s);
        ec_s.add(e, s);
        table.addRow({fmt(s, 1), fmt(j, 0), fmt(e, 0)});
    }

    fig.checks.push_back(check(
        "ECperf's absolute communication footprint exceeds SPECjbb's",
        ec.curve.keysForShare(0.95) > jbb.curve.keysForShare(0.95),
        "lines for 95%: ec=" +
            std::to_string(ec.curve.keysForShare(0.95)) + " jbb=" +
            std::to_string(jbb.curve.keysForShare(0.95))));
    fig.checks.push_back(check(
        "SPECjbb touches more memory overall",
        jbb.touchedLines > ec.touchedLines,
        "touched: jbb=" + std::to_string(jbb.touchedLines) + " ec=" +
            std::to_string(ec.touchedLines)));

    fig.measured = {jbb_s, ec_s};
    fig.table = table;
    return fig;
}

// ---------------------------------------------------------------------
// Figure 16: shared caches
// ---------------------------------------------------------------------

std::vector<ExperimentSpec>
fig16GridSpecs(const FigureOptions &opt)
{
    const std::vector<unsigned> shares = {1, 2, 4, 8};
    std::vector<ExperimentSpec> specs;
    for (unsigned share : shares) {
        specs.push_back(
            sharedCacheSpec(WorkloadKind::Ecperf, 8, share, opt));
        specs.push_back(
            sharedCacheSpec(WorkloadKind::SpecJbb, 25, share, opt));
    }
    return specs;
}

FigureResult
runFig16(const FigureOptions &opt)
{
    FigureResult fig;
    fig.id = "fig16";
    fig.title =
        "Data miss rate with 1 MB L2s shared by 1/2/4/8 processors";

    const std::vector<unsigned> shares = {1, 2, 4, 8};
    const std::vector<ExperimentSpec> specs = fig16GridSpecs(opt);
    const std::vector<RunResult> results = runGrid(specs);
    for (std::size_t i = 0; i < specs.size(); ++i)
        fig.metricsByPoint.emplace(pointName(specs[i]),
                                   *results[i].metrics);

    Series ec("ecperf"), jbb("specjbb-25");
    Table table({"cpus/L2", "ecperf", "specjbb-25", "paper-ec",
                 "paper-jbb25"});
    for (std::size_t i = 0; i < shares.size(); ++i) {
        const unsigned share = shares[i];
        const double e = dataMpki(results[2 * i]);
        const double j = dataMpki(results[2 * i + 1]);
        ec.add(share, e);
        jbb.add(share, j);
        table.addRow({fmt(share, 0), fmt(e, 2), fmt(j, 2),
                      fmt(paper::fig16Ecperf().yAt(share), 2),
                      fmt(paper::fig16SpecJbb25().yAt(share), 2)});
    }

    fig.checks.push_back(check(
        "sharing reduces ECperf's miss rate (best fully shared)",
        ec.yAt(8) < ec.yAt(1),
        "private=" + fmt(ec.yAt(1), 2) + " shared-8=" +
            fmt(ec.yAt(8), 2)));
    fig.checks.push_back(check(
        "sharing increases SPECjbb-25's miss rate",
        jbb.yAt(8) > jbb.yAt(1),
        "private=" + fmt(jbb.yAt(1), 2) + " shared-8=" +
            fmt(jbb.yAt(8), 2)));
    fig.checks.push_back(check(
        "the workloads reach opposite conclusions",
        ec.yAt(8) < ec.yAt(1) && jbb.yAt(8) > jbb.yAt(1),
        "crossover reproduced"));

    fig.measured = {ec, jbb};
    fig.paperRef = {paper::fig16Ecperf(), paper::fig16SpecJbb25()};
    fig.table = table;
    return fig;
}

} // namespace middlesim::core
