#include "core/trace_tool.hh"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/metrics_io.hh"
#include "core/trace_run.hh"
#include "sim/log.hh"
#include "trace/reader.hh"

namespace middlesim::core
{

namespace
{

int
usage()
{
    std::fprintf(
        stderr,
        "usage: middlesim-trace <command> [args]\n"
        "  info FILE                  header + record counts\n"
        "  validate FILE              structural validation\n"
        "  timeline FILE [--limit=N]  annotation timeline\n"
        "  record --out=FILE [--workload=specjbb|ecperf --app-cpus=N\n"
        "         --total-cpus=N --cpus-per-l2=N --scale=N --seed=N\n"
        "         --warmup=T --measure=T --track-comm]\n"
        "  replay FILE [--l2-kb=N --cpus-per-l2=N]\n"
        "  sweep FILE [--mode=auto|legacy|single-pass|per-config]\n"
        "                             Figure 12/13 cache sweep\n"
        "  sharing FILE [--mode=single-pass|per-degree]\n"
        "                             Figure 16 shared-L2 what-if\n");
    return 1;
}

/** Load a trace file or fail loudly. */
std::string
loadTrace(const std::string &path)
{
    std::string data;
    if (!trace::readTraceFile(path, data))
        fatal("middlesim-trace: cannot read '", path, "'");
    return data;
}

std::uint64_t
parseU64(const std::string &arg, std::size_t prefix)
{
    const std::string v = arg.substr(prefix);
    if (v.empty())
        fatal("middlesim-trace: bad flag '", arg, "'");
    return std::strtoull(v.c_str(), nullptr, 10);
}

void
printHeader(const trace::TraceHeader &h)
{
    std::printf("format:     %s\n", trace::traceMagic);
    std::printf("label:      %s\n",
                h.label.empty() ? "(none)" : h.label.c_str());
    std::printf("spec key:   %zu bytes%s\n", h.specKey.size(),
                h.specKey.empty() ? " (not spec-driven)" : "");
    std::printf("machine:    %u cpus (%u app), %u per L2\n",
                h.totalCpus, h.appCpus, h.cpusPerL2);
    std::printf("caches:     L1i %llu KB / L1d %llu KB / L2 %llu KB "
                "(%u-way, %u B blocks)\n",
                static_cast<unsigned long long>(h.l1i.sizeBytes >> 10),
                static_cast<unsigned long long>(h.l1d.sizeBytes >> 10),
                static_cast<unsigned long long>(h.l2.sizeBytes >> 10),
                h.l2.assoc, h.l2.blockBytes);
    std::printf("intervals:  warmup %llu, measure %llu ticks\n",
                static_cast<unsigned long long>(h.warmupTicks),
                static_cast<unsigned long long>(h.measureTicks));
    std::printf("seed:       %llu\n",
                static_cast<unsigned long long>(h.seed));
    std::printf("comm track: %s\n", h.trackCommunication ? "on" : "off");
    for (const trace::TraceRegion &r : h.regions) {
        std::printf("region:     %-12s base 0x%llx, %llu MB\n",
                    r.name.c_str(),
                    static_cast<unsigned long long>(r.base),
                    static_cast<unsigned long long>(r.bytes >> 20));
    }
}

int
cmdInfo(const std::string &path)
{
    trace::TraceReader reader(loadTrace(path));
    if (!reader.ok())
        fatal("middlesim-trace: '", path, "': ", reader.error());
    printHeader(reader.header());
    if (!reader.drain())
        fatal("middlesim-trace: '", path, "': ", reader.error());
    std::printf("refs:       %llu\n",
                static_cast<unsigned long long>(reader.refCount()));
    std::printf("annotations:%llu\n",
                static_cast<unsigned long long>(
                    reader.annotationCount()));
    const std::vector<std::uint64_t> &counts =
        reader.annotationCounts();
    for (std::size_t k = 0; k < counts.size(); ++k) {
        if (counts[k] == 0)
            continue;
        std::printf("  %-18s %llu\n",
                    mem::traceAnnotationName(
                        static_cast<mem::TraceAnnotation>(k)),
                    static_cast<unsigned long long>(counts[k]));
    }
    return 0;
}

int
cmdValidate(const std::string &path)
{
    std::string data;
    if (!trace::readTraceFile(path, data)) {
        std::fprintf(stderr, "INVALID %s: cannot read file\n",
                     path.c_str());
        return 1;
    }
    trace::TraceReader reader(std::move(data));
    if (!reader.ok() || !reader.drain()) {
        std::fprintf(stderr, "INVALID %s: %s\n", path.c_str(),
                     reader.error().c_str());
        return 1;
    }
    std::printf("OK %s: %llu refs, %llu annotations\n", path.c_str(),
                static_cast<unsigned long long>(reader.refCount()),
                static_cast<unsigned long long>(
                    reader.annotationCount()));
    return 0;
}

int
cmdTimeline(const std::string &path, std::uint64_t limit)
{
    trace::TraceReader reader(loadTrace(path));
    if (!reader.ok())
        fatal("middlesim-trace: '", path, "': ", reader.error());
    trace::TraceRecord rec;
    std::uint64_t shown = 0;
    while (reader.next(rec)) {
        if (rec.isRef)
            continue;
        if (shown++ >= limit) {
            std::printf("... (--limit=%llu reached)\n",
                        static_cast<unsigned long long>(limit));
            break;
        }
        std::printf("%12llu  cpu%-3u %-16s arg=%llu\n",
                    static_cast<unsigned long long>(rec.tick), rec.ref.cpu,
                    mem::traceAnnotationName(rec.kind),
                    static_cast<unsigned long long>(rec.arg));
    }
    if (!reader.ok())
        fatal("middlesim-trace: '", path, "': ", reader.error());
    return 0;
}

/** Parse the shared spec flags of `record`. */
ExperimentSpec
specFromFlags(const std::vector<std::string> &flags, std::string &out)
{
    ExperimentSpec spec;
    spec.appCpus = 1;
    spec.totalCpus = 1;
    spec.warmup = 2'000'000;
    spec.measure = 4'000'000;
    for (const std::string &arg : flags) {
        if (arg.rfind("--out=", 0) == 0) {
            out = arg.substr(6);
        } else if (arg.rfind("--workload=", 0) == 0) {
            const std::string kind = arg.substr(11);
            if (kind == "specjbb")
                spec.workload = WorkloadKind::SpecJbb;
            else if (kind == "ecperf")
                spec.workload = WorkloadKind::Ecperf;
            else
                fatal("middlesim-trace: unknown workload '", kind, "'");
        } else if (arg.rfind("--app-cpus=", 0) == 0) {
            spec.appCpus = static_cast<unsigned>(parseU64(arg, 11));
        } else if (arg.rfind("--total-cpus=", 0) == 0) {
            spec.totalCpus = static_cast<unsigned>(parseU64(arg, 13));
        } else if (arg.rfind("--cpus-per-l2=", 0) == 0) {
            spec.cpusPerL2 = static_cast<unsigned>(parseU64(arg, 14));
        } else if (arg.rfind("--scale=", 0) == 0) {
            spec.scale = static_cast<unsigned>(parseU64(arg, 8));
        } else if (arg.rfind("--seed=", 0) == 0) {
            spec.seed = parseU64(arg, 7);
        } else if (arg.rfind("--warmup=", 0) == 0) {
            spec.warmup = parseU64(arg, 9);
        } else if (arg.rfind("--measure=", 0) == 0) {
            spec.measure = parseU64(arg, 10);
        } else if (arg == "--track-comm") {
            spec.trackCommunication = true;
        } else {
            fatal("middlesim-trace: unknown record flag '", arg, "'");
        }
    }
    return spec;
}

int
cmdRecord(const std::vector<std::string> &flags)
{
    std::string out;
    const ExperimentSpec spec = specFromFlags(flags, out);
    if (out.empty())
        fatal("middlesim-trace: record requires --out=FILE");
    const TraceRecordOutcome rec = recordTraceRun(spec, out);
    std::printf("recorded %s -> %s\n", pointName(spec).c_str(),
                out.c_str());
    std::printf("  instructions: %llu\n",
                static_cast<unsigned long long>(
                    rec.result.cpi.instructions));
    std::printf("  throughput:   %.1f tx/s\n", rec.result.throughput);
    return 0;
}

void
printMissBreakdown(const mem::CacheStats &s, std::uint64_t touched)
{
    std::printf("  L2 accesses:  %llu (%llu hits)\n",
                static_cast<unsigned long long>(s.l2Accesses),
                static_cast<unsigned long long>(s.l2Hits));
    std::printf("  L2 misses:    %llu  (cold %llu, coherence %llu, "
                "capacity %llu)\n",
                static_cast<unsigned long long>(s.l2Misses()),
                static_cast<unsigned long long>(s.missCold),
                static_cast<unsigned long long>(s.missCoherence),
                static_cast<unsigned long long>(s.missCapacity));
    std::printf("  c2c/upgrades: %llu / %llu\n",
                static_cast<unsigned long long>(s.c2cTransfers),
                static_cast<unsigned long long>(s.upgrades));
    if (touched)
        std::printf("  touched lines:%llu\n",
                    static_cast<unsigned long long>(touched));
}

int
cmdReplay(const std::string &path,
          const std::vector<std::string> &flags)
{
    trace::ReplayOverrides overrides;
    for (const std::string &arg : flags) {
        if (arg.rfind("--l2-kb=", 0) == 0)
            overrides.l2SizeBytes = parseU64(arg, 8) << 10;
        else if (arg.rfind("--cpus-per-l2=", 0) == 0)
            overrides.cpusPerL2 =
                static_cast<unsigned>(parseU64(arg, 14));
        else
            fatal("middlesim-trace: unknown replay flag '", arg, "'");
    }
    HierarchyReplayOutcome out =
        replayTraceHierarchy(loadTrace(path), overrides);
    if (!out.valid)
        fatal("middlesim-trace: '", path, "': ", out.error);
    std::printf("replayed %llu refs, %llu annotations (%s)\n",
                static_cast<unsigned long long>(out.counts.refs),
                static_cast<unsigned long long>(out.counts.annotations),
                out.header.label.c_str());
    printMissBreakdown(out.aggregate, out.touchedLines);
    return 0;
}

int
cmdSweep(const std::string &path,
         const std::vector<std::string> &flags)
{
    // Mode only selects how the counts are computed; stdout is
    // byte-identical across modes (mode info goes to stderr) so the
    // equivalence harness can diff the outputs directly.
    std::string mode = "auto";
    for (const std::string &arg : flags) {
        if (arg.rfind("--mode=", 0) == 0)
            mode = arg.substr(7);
        else
            fatal("middlesim-trace: unknown sweep flag '", arg, "'");
    }
    SweepReplayOutcome out;
    if (mode == "auto")
        out = replayTraceSweep(loadTrace(path));
    else if (mode == "legacy")
        out = replayTraceSweep(loadTrace(path),
                               mem::SweepEngine::Legacy);
    else if (mode == "single-pass")
        out = replayTraceSweep(loadTrace(path),
                               mem::SweepEngine::SinglePass);
    else if (mode == "per-config")
        out = replayTraceSweepPerConfig(loadTrace(path));
    else
        fatal("middlesim-trace: unknown sweep mode '", mode, "'");
    if (!out.valid)
        fatal("middlesim-trace: '", path, "': ", out.error);
    std::fprintf(stderr, "sweep engine: %s\n", out.engine.c_str());
    std::printf("replayed %llu refs (%s), %llu instructions\n",
                static_cast<unsigned long long>(out.counts.refs),
                out.header.label.c_str(),
                static_cast<unsigned long long>(out.instructions));
    std::printf("%10s %14s %14s\n", "size", "imiss/1000", "dmiss/1000");
    for (std::size_t i = 0; i < out.icache.size(); ++i) {
        std::printf(
            "%7llu KB %14.3f %14.3f\n",
            static_cast<unsigned long long>(
                out.icache[i].params.sizeBytes >> 10),
            out.icache[i].missesPer1000(out.instructions),
            out.dcache[i].missesPer1000(out.instructions));
    }
    return 0;
}

void
printSharingRow(unsigned share, const HierarchyReplayOutcome &out,
                const std::string &path)
{
    if (!out.valid)
        fatal("middlesim-trace: '", path, "': ", out.error);
    const mem::CacheStats &s = out.aggregate;
    std::printf("%8u %12llu %12llu %12llu %12llu\n", share,
                static_cast<unsigned long long>(s.l2Misses()),
                static_cast<unsigned long long>(s.missCoherence),
                static_cast<unsigned long long>(s.missCapacity),
                static_cast<unsigned long long>(s.c2cTransfers));
}

int
cmdSharing(const std::string &path,
           const std::vector<std::string> &flags)
{
    // Default: single-pass fan-out (one decode, all degrees).
    // --mode=per-degree replays the stream once per degree; the two
    // modes print byte-identical stdout (mode info on stderr).
    std::string mode = "single-pass";
    for (const std::string &arg : flags) {
        if (arg.rfind("--mode=", 0) == 0)
            mode = arg.substr(7);
        else
            fatal("middlesim-trace: unknown sharing flag '", arg, "'");
    }
    if (mode != "single-pass" && mode != "per-degree")
        fatal("middlesim-trace: unknown sharing mode '", mode, "'");

    const std::string data = loadTrace(path);
    trace::TraceReader probe{std::string(data)};
    if (!probe.ok())
        fatal("middlesim-trace: '", path, "': ", probe.error());
    const unsigned total = probe.header().totalCpus;
    std::vector<unsigned> degrees;
    for (unsigned share = 1; share <= total; share *= 2) {
        if (total % share == 0)
            degrees.push_back(share);
    }

    std::fprintf(stderr, "sharing mode: %s (%zu degrees)\n",
                 mode.c_str(), degrees.size());
    std::printf("%8s %12s %12s %12s %12s\n", "cpusPerL2", "misses",
                "coherence", "capacity", "c2c");
    if (mode == "single-pass") {
        const std::vector<HierarchyReplayOutcome> outs =
            replayTraceSharing(std::string(data), degrees);
        for (std::size_t i = 0; i < degrees.size(); ++i)
            printSharingRow(degrees[i], outs[i], path);
    } else {
        for (unsigned share : degrees) {
            trace::ReplayOverrides overrides;
            overrides.cpusPerL2 = share;
            printSharingRow(
                share,
                replayTraceHierarchy(std::string(data), overrides),
                path);
        }
    }
    return 0;
}

} // namespace

int
traceToolMain(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    std::vector<std::string> rest;
    for (int i = 2; i < argc; ++i)
        rest.emplace_back(argv[i]);

    if (cmd == "record")
        return cmdRecord(rest);
    if (rest.empty())
        return usage();

    const std::string path = rest.front();
    rest.erase(rest.begin());
    if (cmd == "info" && rest.empty())
        return cmdInfo(path);
    if (cmd == "validate" && rest.empty())
        return cmdValidate(path);
    if (cmd == "timeline") {
        std::uint64_t limit = 100;
        for (const std::string &arg : rest) {
            if (arg.rfind("--limit=", 0) == 0)
                limit = parseU64(arg, 8);
            else
                fatal("middlesim-trace: unknown timeline flag '", arg,
                      "'");
        }
        return cmdTimeline(path, limit);
    }
    if (cmd == "replay")
        return cmdReplay(path, rest);
    if (cmd == "sweep")
        return cmdSweep(path, rest);
    if (cmd == "sharing")
        return cmdSharing(path, rest);
    return usage();
}

} // namespace middlesim::core
