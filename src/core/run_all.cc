#include "core/run_all.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "check/checker.hh"
#include "core/cache.hh"
#include "core/figures_internal.hh"
#include "core/metrics_io.hh"
#include "core/report.hh"
#include "core/trace_run.hh"
#include "sim/log.hh"
#include "sim/metrics.hh"
#include "sim/threadpool.hh"

namespace middlesim::core
{

namespace
{

/** One leaf simulation a figure needs, addressed for deduplication. */
struct WorkItem
{
    /** Content address: "<kind>:<canonical spec key>". */
    std::string id;
    std::function<void()> run;
};

struct FigureJob
{
    const char *id;
    FigureResult (*harness)(const FigureOptions &);
};

constexpr FigureJob kFigures[] = {
    {"fig04", runFig04}, {"fig05", runFig05}, {"fig06", runFig06},
    {"fig07", runFig07}, {"fig08", runFig08}, {"fig09", runFig09},
    {"fig10", runFig10}, {"fig11", runFig11}, {"fig12", runFig12},
    {"fig13", runFig13}, {"fig14", runFig14}, {"fig15", runFig15},
    {"fig16", runFig16},
};

void
addGridItems(std::vector<WorkItem> &items,
             const std::vector<ExperimentSpec> &specs)
{
    for (const ExperimentSpec &spec : specs) {
        items.push_back({"run:" + encodeSpecKey(spec),
                         [spec] { cachedRunExperiment(spec); }});
    }
}

/**
 * The leaf simulations figure `fig` consumes. Ids are content
 * addresses, so identical points requested by different figures
 * collapse to one unit of work.
 */
std::vector<WorkItem>
figureWork(const std::string &fig, const FigureOptions &opt)
{
    std::vector<WorkItem> items;
    if (fig >= "fig04" && fig <= "fig09") {
        addGridItems(items, scalingGridSpecs(opt));
    } else if (fig == "fig10") {
        items.push_back(
            {"fig10:", [opt] { cachedFig10Data(opt); }});
    } else if (fig == "fig11") {
        for (unsigned s : fig11JbbScales()) {
            items.push_back({"live:jbb:" + std::to_string(s), [s, opt] {
                cachedLivePoint(WorkloadKind::SpecJbb, s, opt);
            }});
        }
        for (unsigned s : fig11EcperfScales()) {
            items.push_back({"live:ec:" + std::to_string(s), [s, opt] {
                cachedLivePoint(WorkloadKind::Ecperf, s, opt);
            }});
        }
    } else if (fig == "fig12" || fig == "fig13") {
        items.push_back({"sweep:ec:8", [opt] {
            cachedSweepOutcome(WorkloadKind::Ecperf, 8, opt);
        }});
        for (unsigned s : {1u, 10u, 25u}) {
            items.push_back({"sweep:jbb:" + std::to_string(s),
                             [s, opt] {
                cachedSweepOutcome(WorkloadKind::SpecJbb, s, opt);
            }});
        }
    } else if (fig == "fig14" || fig == "fig15") {
        items.push_back({"comm:jbb:15:15", [opt] {
            cachedCommFootprint(WorkloadKind::SpecJbb, 15, 15, opt);
        }});
        items.push_back({"comm:ec:8:8", [opt] {
            cachedCommFootprint(WorkloadKind::Ecperf, 8, 8, opt);
        }});
    } else if (fig == "fig16") {
        addGridItems(items, fig16GridSpecs(opt));
    }
    return items;
}

void
writeStatsJson(std::ostream &os, std::uint64_t requested,
               std::uint64_t unique, double prefetch_seconds)
{
    const RunCache::Stats cs = RunCache::global().stats();
    const GridDedupeStats gs = gridDedupeStats();
    os << "{\n"
       << "  \"schema\": \"middlesim-runall-stats-v1\",\n"
       << "  \"requested_points\": " << requested << ",\n"
       << "  \"unique_points\": " << unique << ",\n"
       << "  \"dedupe_ratio\": "
       << sim::formatDouble(
              requested ? static_cast<double>(unique) /
                              static_cast<double>(requested)
                        : 1.0)
       << ",\n"
       << "  \"prefetch_seconds\": "
       << sim::formatDouble(prefetch_seconds) << ",\n"
       << "  \"grid_requested\": " << gs.requested << ",\n"
       << "  \"grid_unique\": " << gs.unique << ",\n"
       << "  \"cache_memory_hits\": " << cs.memoryHits << ",\n"
       << "  \"cache_disk_hits\": " << cs.diskHits << ",\n"
       << "  \"cache_misses\": " << cs.misses << ",\n"
       << "  \"cache_stores\": " << cs.stores << ",\n"
       << "  \"jobs_used\": " << sim::ThreadPool::global().jobs()
       << ",\n"
       << "  \"hardware_concurrency\": "
       << std::thread::hardware_concurrency() << "\n"
       << "}\n";
}

} // namespace

int
runAllMain(int argc, char **argv)
{
    std::string metrics_dir;
    std::string stats_out;
    std::string cache_dir;
    std::string trace_out;
    std::string trace_in;
    bool no_cache = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--jobs=", 0) == 0) {
            const long jobs = std::strtol(arg.c_str() + 7, nullptr, 10);
            if (jobs < 1)
                fatal("run_all: bad flag '", arg,
                      "' (want --jobs=N with N >= 1)");
            sim::ThreadPool::setGlobalJobs(static_cast<unsigned>(jobs));
        } else if (arg.rfind("--metrics-dir=", 0) == 0) {
            metrics_dir = arg.substr(14);
            if (metrics_dir.empty())
                fatal("run_all: bad flag '", arg,
                      "' (want --metrics-dir=DIR)");
        } else if (arg.rfind("--stats-out=", 0) == 0) {
            stats_out = arg.substr(12);
            if (stats_out.empty())
                fatal("run_all: bad flag '", arg,
                      "' (want --stats-out=PATH)");
        } else if (arg.rfind("--cache-dir=", 0) == 0) {
            cache_dir = arg.substr(12);
            if (cache_dir.empty())
                fatal("run_all: bad flag '", arg,
                      "' (want --cache-dir=PATH)");
        } else if (arg.rfind("--trace-out=", 0) == 0) {
            trace_out = arg.substr(12);
            if (trace_out.empty())
                fatal("run_all: bad flag '", arg,
                      "' (want --trace-out=DIR)");
        } else if (arg.rfind("--trace-in=", 0) == 0) {
            trace_in = arg.substr(11);
            if (trace_in.empty())
                fatal("run_all: bad flag '", arg,
                      "' (want --trace-in=DIR)");
        } else if (arg == "--no-cache") {
            no_cache = true;
        } else if (arg == "--check") {
            check::setCheckingEnabled(true);
        } else {
            fatal("run_all: unknown flag '", arg,
                  "' (supported: --jobs=N, --metrics-dir=DIR, "
                  "--stats-out=PATH, --cache-dir=PATH, --no-cache, "
                  "--check, --trace-out=DIR, --trace-in=DIR)");
        }
    }
    // A cached result was produced without the checkers watching;
    // checking is only meaningful for runs that actually execute.
    if (check::checkingEnabled())
        no_cache = true;
    configureRunCache(cache_dir, no_cache);
    configureTracingFromFlags(trace_out, trace_in);

    const FigureOptions opt = FigureOptions::fromEnv();

    // Global work queue: every leaf every figure needs, deduplicated
    // by content address.
    std::vector<WorkItem> unique_items;
    std::set<std::string> seen;
    std::uint64_t requested = 0;
    for (const FigureJob &job : kFigures) {
        for (WorkItem &item : figureWork(job.id, opt)) {
            ++requested;
            if (seen.insert(item.id).second)
                unique_items.push_back(std::move(item));
        }
    }
    std::fprintf(stderr,
                 "run_all: %llu leaf points requested by 13 figures, "
                 "%zu unique after dedupe (jobs=%u)\n",
                 static_cast<unsigned long long>(requested),
                 unique_items.size(),
                 sim::ThreadPool::global().jobs());

    // Prefetch: one flat fan-out over the unique points. Leaf tasks
    // never submit nested pool work, so this cannot deadlock.
    const auto t_start = std::chrono::steady_clock::now();
    sim::ThreadPool::global().parallelFor(
        unique_items.size(),
        [&](std::size_t i) { unique_items[i].run(); });
    const double prefetch_seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t_start)
            .count();
    std::fprintf(stderr, "run_all: prefetch done in %.2f s\n",
                 prefetch_seconds);

    // Render every figure (now assembled from memo hits), emitting
    // exactly what the individual drivers would print.
    bool all_pass = true;
    for (const FigureJob &job : kFigures) {
        const FigureResult fig = job.harness(opt);
        printFigure(fig, std::cout);
        all_pass = all_pass && fig.allPass();
        if (!metrics_dir.empty()) {
            const std::string path =
                metrics_dir + "/" + fig.id + ".json";
            std::ofstream os(path);
            if (!os)
                fatal("run_all: cannot open '", path,
                      "' for writing");
            writeMetricsJson(os, fig.id, fig.metricsByPoint);
        }
    }

    if (!stats_out.empty()) {
        std::ofstream os(stats_out);
        if (!os)
            fatal("run_all: cannot open '", stats_out,
                  "' for writing");
        writeStatsJson(os, requested,
                       static_cast<std::uint64_t>(unique_items.size()),
                       prefetch_seconds);
    }
    return all_pass ? 0 : 1;
}

} // namespace middlesim::core
