#include "core/run_all.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "check/checker.hh"
#include "core/cache.hh"
#include "core/figures_internal.hh"
#include "core/metrics_io.hh"
#include "core/report.hh"
#include "core/trace_run.hh"
#include "fabric/coordinator.hh"
#include "fabric/worker.hh"
#include "sim/log.hh"
#include "sim/metrics.hh"
#include "sim/threadpool.hh"

namespace middlesim::core
{

namespace
{

struct FigureJob
{
    const char *id;
    FigureResult (*harness)(const FigureOptions &);
};

constexpr FigureJob kFigures[] = {
    {"fig04", runFig04}, {"fig05", runFig05}, {"fig06", runFig06},
    {"fig07", runFig07}, {"fig08", runFig08}, {"fig09", runFig09},
    {"fig10", runFig10}, {"fig11", runFig11}, {"fig12", runFig12},
    {"fig13", runFig13}, {"fig14", runFig14}, {"fig15", runFig15},
    {"fig16", runFig16},
};

/**
 * A RESULT payload is the item's per-run MetricSnapshot (the figure
 * data itself travels through the shared disk RunCache, not through
 * the protocol).
 */
std::string
packSnapshot(const sim::MetricSnapshot &snap)
{
    sim::ByteWriter w;
    encodeSnapshot(w, snap);
    return w.take();
}

void
addGridItems(std::vector<fabric::FabricItem> &items,
             const std::vector<ExperimentSpec> &specs)
{
    for (const ExperimentSpec &spec : specs) {
        items.push_back({"run:" + encodeSpecKey(spec), [spec] {
            const RunResult r = cachedRunExperiment(spec);
            return packSnapshot(r.metrics ? *r.metrics
                                          : sim::MetricSnapshot{});
        }});
    }
}

/**
 * The leaf simulations figure `fig` consumes. Ids are content
 * addresses, so identical points requested by different figures
 * collapse to one unit of work.
 */
std::vector<fabric::FabricItem>
figureWork(const std::string &fig, const FigureOptions &opt)
{
    std::vector<fabric::FabricItem> items;
    if (fig >= "fig04" && fig <= "fig09") {
        addGridItems(items, scalingGridSpecs(opt));
    } else if (fig == "fig10") {
        items.push_back({"fig10:", [opt] {
            return packSnapshot(cachedFig10Data(opt).snap);
        }});
    } else if (fig == "fig11") {
        for (unsigned s : fig11JbbScales()) {
            items.push_back({"live:jbb:" + std::to_string(s), [s, opt] {
                return packSnapshot(
                    cachedLivePoint(WorkloadKind::SpecJbb, s, opt)
                        .snap);
            }});
        }
        for (unsigned s : fig11EcperfScales()) {
            items.push_back({"live:ec:" + std::to_string(s), [s, opt] {
                return packSnapshot(
                    cachedLivePoint(WorkloadKind::Ecperf, s, opt)
                        .snap);
            }});
        }
    } else if (fig == "fig12" || fig == "fig13") {
        items.push_back({"sweep:ec:8", [opt] {
            return packSnapshot(
                cachedSweepOutcome(WorkloadKind::Ecperf, 8, opt).snap);
        }});
        for (unsigned s : {1u, 10u, 25u}) {
            items.push_back({"sweep:jbb:" + std::to_string(s),
                             [s, opt] {
                return packSnapshot(
                    cachedSweepOutcome(WorkloadKind::SpecJbb, s, opt)
                        .snap);
            }});
        }
    } else if (fig == "fig14" || fig == "fig15") {
        items.push_back({"comm:jbb:15:15", [opt] {
            return packSnapshot(
                cachedCommFootprint(WorkloadKind::SpecJbb, 15, 15, opt)
                    .snap);
        }});
        items.push_back({"comm:ec:8:8", [opt] {
            return packSnapshot(
                cachedCommFootprint(WorkloadKind::Ecperf, 8, 8, opt)
                    .snap);
        }});
    } else if (fig == "fig16") {
        addGridItems(items, fig16GridSpecs(opt));
    }
    return items;
}

/** Fabric-mode figures folded into the stats JSON and stderr log. */
struct FabricSummary
{
    unsigned workersRequested = 0;
    fabric::FabricStats stats;
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t decodeFailures = 0;
};

void
writeStatsJson(std::ostream &os, std::uint64_t requested,
               std::uint64_t unique, double prefetch_seconds,
               const FabricSummary *fab)
{
    const RunCache::Stats cs = RunCache::global().stats();
    const GridDedupeStats gs = gridDedupeStats();
    os << "{\n"
       << "  \"schema\": \"middlesim-runall-stats-v1\",\n"
       << "  \"requested_points\": " << requested << ",\n"
       << "  \"unique_points\": " << unique << ",\n"
       << "  \"dedupe_ratio\": "
       << sim::formatDouble(
              requested ? static_cast<double>(unique) /
                              static_cast<double>(requested)
                        : 1.0)
       << ",\n"
       << "  \"prefetch_seconds\": "
       << sim::formatDouble(prefetch_seconds) << ",\n"
       << "  \"grid_requested\": " << gs.requested << ",\n"
       << "  \"grid_unique\": " << gs.unique << ",\n"
       << "  \"cache_memory_hits\": " << cs.memoryHits << ",\n"
       << "  \"cache_disk_hits\": " << cs.diskHits << ",\n"
       << "  \"cache_misses\": " << cs.misses << ",\n"
       << "  \"cache_corrupt_misses\": " << cs.corruptMisses << ",\n"
       << "  \"cache_stores\": " << cs.stores << ",\n";
    if (fab) {
        const fabric::FabricStats &fs = fab->stats;
        os << "  \"fabric\": {\n"
           << "    \"workers_requested\": " << fab->workersRequested
           << ",\n"
           << "    \"workers_spawned\": " << fs.workersSpawned
           << ",\n"
           << "    \"executed\": " << fs.executed << ",\n"
           << "    \"inline_runs\": " << fs.inlineRuns << ",\n"
           << "    \"requeues\": " << fs.requeues << ",\n"
           << "    \"stale_results\": " << fs.staleResults << ",\n"
           << "    \"duplicate_results\": " << fs.duplicateResults
           << ",\n"
           << "    \"worker_deaths\": " << fs.workerDeaths << ",\n"
           << "    \"worker_seconds\": "
           << sim::formatDouble(fs.workerSeconds) << ",\n"
           << "    \"result_decode_failures\": "
           << fab->decodeFailures << ",\n"
           << "    \"cache_hits\": " << fab->cacheHits << ",\n"
           << "    \"cache_misses\": " << fab->cacheMisses << ",\n"
           << "    \"cache_requeues\": " << fs.requeues << "\n"
           << "  },\n";
    }
    os << "  \"jobs_used\": " << sim::ThreadPool::global().jobs()
       << ",\n"
       << "  \"hardware_concurrency\": "
       << std::thread::hardware_concurrency() << "\n"
       << "}\n";
}

/** mkdtemp() a throwaway artifact-plane directory for --fabric. */
std::string
makeTempCacheDir()
{
    std::error_code ec;
    std::filesystem::path base =
        std::filesystem::temp_directory_path(ec);
    if (ec)
        base = "/tmp";
    std::string templ = (base / "middlesim-fabric-XXXXXX").string();
    std::vector<char> buf(templ.begin(), templ.end());
    buf.push_back('\0');
    if (::mkdtemp(buf.data()) == nullptr) {
        fatal("run_all: cannot create fabric cache dir '", templ,
              "'");
    }
    return std::string(buf.data());
}

} // namespace

RunAllQueue
buildRunAllQueue(const FigureOptions &opt)
{
    RunAllQueue queue;
    std::set<std::string> seen;
    for (const FigureJob &job : kFigures) {
        for (fabric::FabricItem &item : figureWork(job.id, opt)) {
            ++queue.requested;
            if (seen.insert(item.id).second)
                queue.items.push_back(std::move(item));
        }
    }
    return queue;
}

int
runAllMain(int argc, char **argv)
{
    std::string metrics_dir;
    std::string stats_out;
    std::string cache_dir;
    std::string trace_out;
    std::string trace_in;
    std::string fabric_worker_cmd;
    std::string fabric_metrics_out;
    std::string protocol_flag;
    std::string topology_flag;
    unsigned numa_nodes = 0;
    long dir_occupancy = -1;
    bool no_cache = false;
    bool fabric_worker = false;
    unsigned fabric_workers = 0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--jobs=", 0) == 0) {
            const long jobs = std::strtol(arg.c_str() + 7, nullptr, 10);
            if (jobs < 1)
                fatal("run_all: bad flag '", arg,
                      "' (want --jobs=N with N >= 1)");
            sim::ThreadPool::setGlobalJobs(static_cast<unsigned>(jobs));
        } else if (arg.rfind("--metrics-dir=", 0) == 0) {
            metrics_dir = arg.substr(14);
            if (metrics_dir.empty())
                fatal("run_all: bad flag '", arg,
                      "' (want --metrics-dir=DIR)");
        } else if (arg.rfind("--stats-out=", 0) == 0) {
            stats_out = arg.substr(12);
            if (stats_out.empty())
                fatal("run_all: bad flag '", arg,
                      "' (want --stats-out=PATH)");
        } else if (arg.rfind("--cache-dir=", 0) == 0) {
            cache_dir = arg.substr(12);
            if (cache_dir.empty())
                fatal("run_all: bad flag '", arg,
                      "' (want --cache-dir=PATH)");
        } else if (arg.rfind("--trace-out=", 0) == 0) {
            trace_out = arg.substr(12);
            if (trace_out.empty())
                fatal("run_all: bad flag '", arg,
                      "' (want --trace-out=DIR)");
        } else if (arg.rfind("--trace-in=", 0) == 0) {
            trace_in = arg.substr(11);
            if (trace_in.empty())
                fatal("run_all: bad flag '", arg,
                      "' (want --trace-in=DIR)");
        } else if (arg.rfind("--protocol=", 0) == 0) {
            protocol_flag = arg.substr(11);
            sim::CoherenceProtocol p;
            if (!sim::parseProtocol(protocol_flag, p))
                fatal("run_all: bad flag '", arg,
                      "' (want --protocol=snoop|directory)");
        } else if (arg.rfind("--numa-nodes=", 0) == 0) {
            const long nodes =
                std::strtol(arg.c_str() + 13, nullptr, 10);
            if (nodes < 1)
                fatal("run_all: bad flag '", arg,
                      "' (want --numa-nodes=N with N >= 1)");
            numa_nodes = static_cast<unsigned>(nodes);
        } else if (arg.rfind("--topology=", 0) == 0) {
            topology_flag = arg.substr(11);
            sim::Topology t;
            if (!sim::parseTopology(topology_flag, t))
                fatal("run_all: bad flag '", arg,
                      "' (want --topology=ring|mesh)");
        } else if (arg.rfind("--dir-occupancy=", 0) == 0) {
            dir_occupancy = std::strtol(arg.c_str() + 16, nullptr, 10);
            if (dir_occupancy < 0)
                fatal("run_all: bad flag '", arg,
                      "' (want --dir-occupancy=N with N >= 0)");
        } else if (arg == "--no-cache") {
            no_cache = true;
        } else if (arg == "--check") {
            check::setCheckingEnabled(true);
        } else if (arg.rfind("--fabric=", 0) == 0) {
            const long n = std::strtol(arg.c_str() + 9, nullptr, 10);
            if (n < 1)
                fatal("run_all: bad flag '", arg,
                      "' (want --fabric=N with N >= 1)");
            fabric_workers = static_cast<unsigned>(n);
        } else if (arg == "--fabric-worker") {
            fabric_worker = true;
        } else if (arg.rfind("--fabric-worker-cmd=", 0) == 0) {
            fabric_worker_cmd = arg.substr(20);
            if (fabric_worker_cmd.empty())
                fatal("run_all: bad flag '", arg,
                      "' (want --fabric-worker-cmd=CMD)");
        } else if (arg.rfind("--fabric-metrics-out=", 0) == 0) {
            fabric_metrics_out = arg.substr(21);
            if (fabric_metrics_out.empty())
                fatal("run_all: bad flag '", arg,
                      "' (want --fabric-metrics-out=PATH)");
        } else {
            fatal("run_all: unknown flag '", arg,
                  "' (supported: --jobs=N, --metrics-dir=DIR, "
                  "--stats-out=PATH, --cache-dir=PATH, --no-cache, "
                  "--check, --trace-out=DIR, --trace-in=DIR, "
                  "--protocol=snoop|directory, --numa-nodes=N, "
                  "--topology=ring|mesh, --dir-occupancy=N, "
                  "--fabric=N, --fabric-worker, "
                  "--fabric-worker-cmd=CMD, "
                  "--fabric-metrics-out=PATH)");
        }
    }
    if (fabric_workers > 0 && fabric_worker)
        fatal("run_all: --fabric=N and --fabric-worker are mutually "
              "exclusive (the coordinator spawns workers itself)");
    if (fabric_workers > 0 &&
        (no_cache || check::checkingEnabled())) {
        fatal("run_all: --fabric needs the disk cache as its shared "
              "artifact plane; it cannot combine with --no-cache or "
              "--check");
    }
    if (fabric_workers > 0 &&
        (!trace_out.empty() || !trace_in.empty())) {
        fatal("run_all: --fabric does not combine with --trace-out/"
              "--trace-in (trace recording is per-process)");
    }
    if (fabric_workers == 0 && !fabric_worker_cmd.empty())
        fatal("run_all: --fabric-worker-cmd requires --fabric=N");
    if (fabric_workers == 0 && !fabric_metrics_out.empty())
        fatal("run_all: --fabric-metrics-out requires --fabric=N");
    // A cached result was produced without the checkers watching;
    // checking is only meaningful for runs that actually execute.
    if (check::checkingEnabled())
        no_cache = true;
    configureRunCache(cache_dir, no_cache);
    configureTracingFromFlags(trace_out, trace_in);

    FigureOptions opt = FigureOptions::fromEnv();
    // The protocol/topology knobs apply to every figure point (the
    // worker must inherit them through its command line or env so the
    // coordinator and workers build the same queue).
    if (!protocol_flag.empty())
        sim::parseProtocol(protocol_flag, opt.protocol);
    if (numa_nodes != 0)
        opt.numaNodes = numa_nodes;
    if (!topology_flag.empty())
        sim::parseTopology(topology_flag, opt.topology);
    if (dir_occupancy >= 0)
        opt.dirOccupancy = static_cast<unsigned>(dir_occupancy);

    // Worker side of the fabric: same queue, leases in on stdin,
    // results out on stdout. Everything else about this process is
    // driven by the coordinator.
    if (fabric_worker) {
        RunAllQueue queue = buildRunAllQueue(opt);
        fabric::FabricOptions fopt;
        fopt.applyEnv();
        return fabric::runWorker(queue.items, fopt.heartbeatMs);
    }

    // Global work queue: every leaf every figure needs, deduplicated
    // by content address.
    RunAllQueue queue = buildRunAllQueue(opt);
    std::vector<fabric::FabricItem> &unique_items = queue.items;
    const std::uint64_t requested = queue.requested;
    std::fprintf(stderr,
                 "run_all: %llu leaf points requested by 13 figures, "
                 "%zu unique after dedupe (jobs=%u)\n",
                 static_cast<unsigned long long>(requested),
                 unique_items.size(),
                 sim::ThreadPool::global().jobs());

    FabricSummary fab;
    sim::MetricSnapshot fabric_merged;
    std::string temp_cache_dir;
    const auto t_start = std::chrono::steady_clock::now();
    if (fabric_workers > 0) {
        // Sharded prefetch: the workers execute the queue and persist
        // artifacts into the shared disk cache; RESULT frames carry
        // only the per-item metric snapshots merged below.
        std::string disk = RunCache::global().diskDir();
        if (disk.empty()) {
            temp_cache_dir = makeTempCacheDir();
            disk = temp_cache_dir;
            RunCache::global().setDiskDir(disk);
        }
        fabric::FabricOptions fopt;
        fopt.workers = fabric_workers;
        fopt.applyEnv();
        if (!fabric_worker_cmd.empty()) {
            fopt.workerCommand = fabric_worker_cmd;
        } else {
            fopt.workerArgv = {fabric::selfExePath(),
                               "--fabric-worker",
                               "--cache-dir=" + disk};
            if (!protocol_flag.empty())
                fopt.workerArgv.push_back("--protocol=" +
                                          protocol_flag);
            if (numa_nodes != 0)
                fopt.workerArgv.push_back(
                    "--numa-nodes=" + std::to_string(numa_nodes));
            if (!topology_flag.empty())
                fopt.workerArgv.push_back("--topology=" +
                                          topology_flag);
            if (dir_occupancy >= 0)
                fopt.workerArgv.push_back(
                    "--dir-occupancy=" +
                    std::to_string(dir_occupancy));
        }
        std::fprintf(stderr,
                     "run_all: fabric: %u worker(s), artifact plane "
                     "'%s'\n",
                     fabric_workers, disk.c_str());

        std::vector<std::string> payloads(unique_items.size());
        std::vector<char> have(unique_items.size(), 0);
        fab.workersRequested = fabric_workers;
        fab.stats = fabric::runCoordinator(
            unique_items, fopt,
            [&](std::size_t index, const std::string &payload) {
                payloads[index] = payload;
                have[index] = 1;
            });

        // Merge in index order: byte-identical regardless of which
        // worker finished which item when.
        for (std::size_t i = 0; i < payloads.size(); ++i) {
            if (!have[i]) {
                ++fab.decodeFailures;
                continue;
            }
            sim::ByteReader r(payloads[i]);
            const sim::MetricSnapshot snap = decodeSnapshot(r);
            if (!r.atEnd()) {
                ++fab.decodeFailures;
                continue;
            }
            fabric_merged.merge(snap);
        }
    } else {
        // Prefetch: one flat fan-out over the unique points. Leaf
        // tasks never submit nested pool work, so this cannot
        // deadlock.
        sim::ThreadPool::global().parallelFor(
            unique_items.size(),
            [&](std::size_t i) { unique_items[i].run(); });
    }
    const double prefetch_seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t_start)
            .count();
    if (fabric_workers > 0) {
        std::fprintf(stderr,
                     "run_all: fabric: %llu on workers, %llu inline, "
                     "%llu requeued, %llu worker death(s) in %.2f s\n",
                     static_cast<unsigned long long>(
                         fab.stats.executed),
                     static_cast<unsigned long long>(
                         fab.stats.inlineRuns),
                     static_cast<unsigned long long>(
                         fab.stats.requeues),
                     static_cast<unsigned long long>(
                         fab.stats.workerDeaths),
                     prefetch_seconds);
    } else {
        std::fprintf(stderr, "run_all: prefetch done in %.2f s\n",
                     prefetch_seconds);
    }

    // Render every figure (now assembled from memo hits), emitting
    // exactly what the individual drivers would print. In fabric mode
    // the artifacts come off the shared disk cache, so stdout is
    // deterministic for any worker count, loss, or arrival order.
    const RunCache::Stats cs_before_render =
        RunCache::global().stats();
    bool all_pass = true;
    for (const FigureJob &job : kFigures) {
        const FigureResult fig = job.harness(opt);
        printFigure(fig, std::cout);
        all_pass = all_pass && fig.allPass();
        if (!metrics_dir.empty()) {
            const std::string path =
                metrics_dir + "/" + fig.id + ".json";
            std::ofstream os(path);
            if (!os)
                fatal("run_all: cannot open '", path,
                      "' for writing");
            writeMetricsJson(os, fig.id, fig.metricsByPoint);
        }
    }

    if (fabric_workers > 0) {
        // The fabric.cache.* family: how the coordinator's render
        // phase fared against the artifact plane the workers filled.
        const RunCache::Stats cs = RunCache::global().stats();
        fab.cacheHits = (cs.memoryHits + cs.diskHits) -
                        (cs_before_render.memoryHits +
                         cs_before_render.diskHits);
        fab.cacheMisses = cs.misses - cs_before_render.misses;
        sim::MetricRegistry fabric_registry;
        fabric_registry.counter("fabric.cache.hits")
            .set(fab.cacheHits);
        fabric_registry.counter("fabric.cache.misses")
            .set(fab.cacheMisses);
        fabric_registry.counter("fabric.cache.requeues")
            .set(fab.stats.requeues);
        fabric_merged.merge(fabric_registry.snapshot());
    }

    if (!fabric_metrics_out.empty()) {
        std::ofstream os(fabric_metrics_out);
        if (!os)
            fatal("run_all: cannot open '", fabric_metrics_out,
                  "' for writing");
        os << "{\n  \"schema\": \"middlesim-fabric-metrics-v1\",\n"
           << "  \"items\": " << unique_items.size() << ",\n"
           << "  \"merged\":\n";
        fabric_merged.writeJson(os, 2);
        os << "\n}\n";
    }

    if (!stats_out.empty()) {
        std::ofstream os(stats_out);
        if (!os)
            fatal("run_all: cannot open '", stats_out,
                  "' for writing");
        writeStatsJson(os, requested,
                       static_cast<std::uint64_t>(unique_items.size()),
                       prefetch_seconds,
                       fabric_workers > 0 ? &fab : nullptr);
    }

    if (!temp_cache_dir.empty()) {
        std::error_code ec;
        std::filesystem::remove_all(temp_cache_dir, ec);
    }
    return all_pass ? 0 : 1;
}

} // namespace middlesim::core
