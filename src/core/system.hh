/**
 * @file
 * The simulated machine: CPUs + memory hierarchy + OS + JVM +
 * workload threads, advanced in loose lockstep windows.
 *
 * This is the execution-driven heart of the framework — the stand-in
 * for the paper's Simics full-system simulation. Thread programs
 * produce operations; the interpreter here executes them against the
 * in-order core timing model and the coherent memory hierarchy,
 * while the scheduler accounts execution modes and the JVM's
 * stop-the-world collections freeze the application processor set.
 */

#ifndef CORE_SYSTEM_HH
#define CORE_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "check/checker.hh"
#include "cpu/core.hh"
#include "exec/program.hh"
#include "jvm/jvm.hh"
#include "mem/hierarchy.hh"
#include "os/kernel.hh"
#include "os/scheduler.hh"
#include "sim/config.hh"
#include "sim/metrics.hh"
#include "sim/rng.hh"
#include "sim/ticks.hh"

namespace middlesim::core
{

/** Configuration of one simulated machine. */
struct SystemConfig
{
    sim::MachineConfig machine;
    mem::LatencyModel latency;
    cpu::CoreParams core;
    jvm::JvmParams jvm;
    os::KernelParams kernel;

    /** Model bus queueing delay. */
    bool busContention = true;
    /** Run OS housekeeper threads on every CPU. */
    bool osBackground = true;

    /** Lockstep window (cycles). */
    sim::Tick window = 20000;
    /** Scheduling timeslice (cycles; ~1 ms). */
    sim::Tick timeslice = 250000;
    /** Base spin cost of a contended lock acquisition (cycles). */
    sim::Tick spinBase = 250;
    /** Scheduler migration resistance (Solaris rechoose interval). */
    sim::Tick rechoose = 1000000;
    /** CPU that runs the single-threaded collector. */
    unsigned gcCpu = 0;
    /** Metric time-series sampling period (cycles; 0 disables). */
    sim::Tick samplePeriod = 1000000;
};

/** One simulated machine. */
class System
{
  public:
    System(const SystemConfig &config, std::uint64_t seed);

    // Wiring access.
    mem::Hierarchy &memory() { return *mem_; }
    jvm::Jvm &vm() { return *jvm_; }
    os::Scheduler &scheduler() { return *sched_; }
    os::KernelModel &kernel() { return *kernel_; }
    cpu::InOrderCore &core(unsigned c) { return *cores_[c]; }
    const SystemConfig &config() const { return cfg_; }
    sim::Rng forkRng() { return rng_.fork(); }

    /**
     * Register a thread program. The System takes ownership.
     * @return the scheduler tid.
     */
    unsigned addProgram(std::unique_ptr<exec::ThreadProgram> program,
                        bool in_app_set = true, int bound_cpu = -1);

    /** Advance simulated time by `duration` cycles. */
    void run(sim::Tick duration);

    sim::Tick now() const { return now_; }

    /** Zero all statistics; the measured interval starts here. */
    void beginMeasurement();

    sim::Tick measureStart() const { return measureStart_; }
    sim::Tick measuredTicks() const { return now_ - measureStart_; }
    double measuredSeconds() const;

    /** Transactions completed since beginMeasurement(), by type. */
    std::uint64_t txCount(unsigned type) const;
    std::uint64_t txTotal() const;
    /** Completed transactions per simulated second. */
    double throughput() const;

    /** CPI breakdown aggregated over the application processor set. */
    cpu::CpiBreakdown appCpi() const;

    /** Execution-mode breakdown over the application processor set. */
    os::ModeBreakdown appModes() const;

    /** Cache statistics aggregated over the application CPUs. */
    mem::CacheStats appCacheStats() const;

    bool gcActive() const { return gcActive_; }

    /** The unified observability registry of this machine. */
    sim::MetricRegistry &metrics() { return metrics_; }
    const sim::MetricRegistry &metrics() const { return metrics_; }

    /**
     * Record this machine's execution into a reference trace: every
     * memory reference (via the hierarchy) plus GC/safepoint windows,
     * execution-mode switches, scheduler migrations, transaction
     * boundaries and measurement marks. Pass nullptr to detach.
     * Recording is observation-only and never perturbs the run.
     */
    void setTraceSink(mem::TraceSink *sink);
    mem::TraceSink *traceSink() const { return trace_; }

    /**
     * Attach a full invariant-checking session (memory + scheduler +
     * JVM observers) to this machine. Idempotent per System; checking
     * is read-only and never changes simulation results.
     */
    void enableChecking(const check::CheckOptions &opts =
                            check::CheckOptions());

    /** The attached checker, or nullptr when checking is off. */
    check::Checker *checker() { return checker_.get(); }

  private:
    void runCpu(unsigned cpu, sim::Tick window_end);
    void executeBurst(cpu::InOrderCore &core, const exec::Burst &burst);
    /** @return true if the thread keeps the CPU. */
    bool executeOp(unsigned cpu, unsigned tid, const exec::NextOp &op);
    /** Mode accounting since `before`, plus trace mode-switch marks. */
    void account(unsigned cpu, exec::ExecMode mode, sim::Tick before);
    void chargeContextSwitch(unsigned cpu);
    void startGcIfNeeded();
    void finishGc();
    void sampleSeries();

    SystemConfig cfg_;
    sim::Rng rng_;

    /**
     * Declared before the subsystems: they hold handles into the
     * registry and must be destroyed first.
     */
    sim::MetricRegistry metrics_;

    std::unique_ptr<mem::Hierarchy> mem_;
    std::vector<std::unique_ptr<cpu::InOrderCore>> cores_;
    std::unique_ptr<os::Scheduler> sched_;
    std::unique_ptr<os::KernelModel> kernel_;
    std::unique_ptr<jvm::Jvm> jvm_;

    std::vector<std::unique_ptr<exec::ThreadProgram>> programs_;

    /** Current thread per CPU (-1 = none). */
    std::vector<int> current_;
    std::vector<sim::Tick> sliceEnd_;
    exec::Burst burstBuf_;
    /** Per-CPU RNGs for kernel burst fills. */
    std::vector<sim::Rng> cpuRngs_;

    sim::Tick now_ = 0;
    sim::Tick measureStart_ = 0;

    std::vector<std::uint64_t> txCounts_;

    bool gcActive_ = false;
    sim::Tick gcStart_ = 0;
    int gcTid_ = -1;
    std::unique_ptr<exec::ThreadProgram> gcProgram_;

    sim::Tick nextSample_ = 0;

    mem::TraceSink *trace_ = nullptr;
    /** Last mode recorded per CPU (-1 = none); dedupes ModeSwitch. */
    std::vector<int> tracedMode_;

    /**
     * Declared last: the checker holds observers registered with the
     * subsystems above and must detach before they are destroyed.
     */
    std::unique_ptr<check::Checker> checker_;
};

} // namespace middlesim::core

#endif // CORE_SYSTEM_HH
