#include "core/figures.hh"

#include <cmath>
#include <cstdlib>
#include <map>
#include <sstream>

#include "core/cache.hh"
#include "core/figures_internal.hh"
#include "core/paper.hh"
#include "mem/sweep.hh"
#include "sim/log.hh"

namespace middlesim::core
{

namespace
{

using stats::Series;
using stats::Table;

std::string
fmt(double v, int prec = 2)
{
    return Table::num(v, prec);
}

ShapeCheck
check(const std::string &what, bool pass, const std::string &detail)
{
    return {what, pass, detail};
}

/** Mean of a metric over repeated runs. */
double
meanOf(const std::vector<RunResult> &runs,
       const std::function<double(const RunResult &)> &metric)
{
    return summarize(runs, metric).mean();
}

double
stdOf(const std::vector<RunResult> &runs,
      const std::function<double(const RunResult &)> &metric)
{
    return summarize(runs, metric).stddev();
}

/** Base spec for a scaling-figure point. */
ExperimentSpec
scalingSpec(WorkloadKind kind, unsigned cpus, const FigureOptions &opt)
{
    ExperimentSpec spec;
    spec.workload = kind;
    spec.appCpus = cpus;
    spec.seed = opt.seed;
    spec.protocol = opt.protocol;
    spec.numaNodes = opt.numaNodes;
    spec.topology = opt.topology;
    spec.dirOccupancy = opt.dirOccupancy;
    spec.warmup = static_cast<sim::Tick>(
        static_cast<double>(spec.warmup) * opt.timeScale);
    spec.measure = static_cast<sim::Tick>(
        static_cast<double>(spec.measure) * opt.timeScale);
    return spec;
}

} // namespace

FigureOptions
FigureOptions::fromEnv()
{
    FigureOptions opt;
    if (const char *runs = std::getenv("MIDDLESIM_RUNS"))
        opt.runs = static_cast<unsigned>(std::atoi(runs));
    if (const char *quick = std::getenv("MIDDLESIM_QUICK")) {
        if (std::atoi(quick) != 0) {
            opt.runs = 1;
            opt.timeScale = 0.5;
        }
    }
    if (const char *ts = std::getenv("MIDDLESIM_TIMESCALE")) {
        const double v = std::atof(ts);
        if (v > 0.0)
            opt.timeScale = v;
    }
    if (const char *proto = std::getenv("MIDDLESIM_PROTOCOL")) {
        if (*proto != '\0' &&
            !sim::parseProtocol(proto, opt.protocol))
            fatal("MIDDLESIM_PROTOCOL: unknown protocol '", proto,
                  "' (want snoop or directory)");
    }
    if (const char *nodes = std::getenv("MIDDLESIM_NUMA_NODES")) {
        const int v = std::atoi(nodes);
        if (v >= 1)
            opt.numaNodes = static_cast<unsigned>(v);
    }
    if (const char *topo = std::getenv("MIDDLESIM_TOPOLOGY")) {
        if (*topo != '\0' && !sim::parseTopology(topo, opt.topology))
            fatal("MIDDLESIM_TOPOLOGY: unknown topology '", topo,
                  "' (want ring or mesh)");
    }
    if (const char *occ = std::getenv("MIDDLESIM_DIR_OCCUPANCY")) {
        const int v = std::atoi(occ);
        if (v >= 0)
            opt.dirOccupancy = static_cast<unsigned>(v);
    }
    if (opt.runs == 0)
        opt.runs = 1;
    return opt;
}

namespace
{

struct SweepCacheEntry
{
    std::vector<ScalingPoint> sweep;
    MetricsMap metrics;
};

SweepCacheEntry &
scalingSweepEntry(const FigureOptions &opt)
{
    using Key = std::tuple<unsigned, long, std::uint64_t, unsigned,
                           unsigned, unsigned, unsigned>;
    static std::map<Key, SweepCacheEntry> cache;
    const Key key{opt.runs,
                  std::lround(opt.timeScale * 1000),
                  opt.seed,
                  static_cast<unsigned>(opt.protocol),
                  opt.numaNodes,
                  static_cast<unsigned>(opt.topology),
                  opt.dirOccupancy};
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second;

    const std::vector<ExperimentSpec> specs = scalingGridSpecs(opt);
    const std::vector<RunResult> results = runGrid(specs);

    SweepCacheEntry entry;
    for (std::size_t i = 0; i < specs.size(); ++i)
        entry.metrics.emplace(pointName(specs[i]), *results[i].metrics);

    auto next = results.begin();
    for (double cpus_d : paper::cpuSweep()) {
        ScalingPoint point;
        point.cpus = static_cast<unsigned>(cpus_d);
        point.ecperf.assign(next, next + opt.runs);
        next += opt.runs;
        point.jbb.assign(next, next + opt.runs);
        next += opt.runs;
        entry.sweep.push_back(std::move(point));
    }
    return cache.emplace(key, std::move(entry)).first->second;
}

} // namespace

std::vector<ExperimentSpec>
scalingGridSpecs(const FigureOptions &opt)
{
    // Flatten every (cpu count, workload, repetition) into one grid
    // so independent points fan out across the thread pool together;
    // seeds come from repeatedSpec(), so the regrouped results are
    // identical to per-point runRepeated() calls.
    std::vector<ExperimentSpec> specs;
    for (double cpus_d : paper::cpuSweep()) {
        const auto cpus = static_cast<unsigned>(cpus_d);
        for (unsigned r = 0; r < opt.runs; ++r) {
            specs.push_back(repeatedSpec(
                scalingSpec(WorkloadKind::Ecperf, cpus, opt), r));
        }
        for (unsigned r = 0; r < opt.runs; ++r) {
            specs.push_back(repeatedSpec(
                scalingSpec(WorkloadKind::SpecJbb, cpus, opt), r));
        }
    }
    return specs;
}

const std::vector<ScalingPoint> &
scalingSweep(const FigureOptions &opt)
{
    return scalingSweepEntry(opt).sweep;
}

const MetricsMap &
scalingSweepMetrics(const FigureOptions &opt)
{
    return scalingSweepEntry(opt).metrics;
}

// ---------------------------------------------------------------------
// Figure 4: throughput scaling
// ---------------------------------------------------------------------

FigureResult
runFig04(const FigureOptions &opt)
{
    const auto &sweep = scalingSweep(opt);
    auto tput = [](const RunResult &r) { return r.throughput; };

    const double ec_base = meanOf(sweep.front().ecperf, tput);
    const double jbb_base = meanOf(sweep.front().jbb, tput);

    FigureResult fig;
    fig.id = "fig04";
    fig.title = "Throughput scaling on a Sun E6000 (speedup vs 1 CPU)";
    fig.metricsByPoint = scalingSweepMetrics(opt);

    Series ec("ecperf"), jbb("specjbb");
    Table table({"cpus", "ecperf", "+-", "specjbb", "+-",
                 "paper-ec", "paper-jbb"});
    for (const auto &p : sweep) {
        const double e = meanOf(p.ecperf, tput) / ec_base;
        const double es = stdOf(p.ecperf, tput) / ec_base;
        const double j = meanOf(p.jbb, tput) / jbb_base;
        const double js = stdOf(p.jbb, tput) / jbb_base;
        ec.add(p.cpus, e, es);
        jbb.add(p.cpus, j, js);
        table.addRow({fmt(p.cpus, 0), fmt(e), fmt(es), fmt(j), fmt(js),
                      fmt(paper::fig4Ecperf().yAt(p.cpus)),
                      fmt(paper::fig4SpecJbb().yAt(p.cpus))});
    }

    const double ec8 = ec.yAt(8), jbb10 = jbb.yAt(10);
    const double jbb15 = jbb.yAt(15), ec15 = ec.yAt(15);
    const double ec_peak = ec.maxY();
    fig.checks.push_back(check(
        "ECperf scales super-linearly to 8 CPUs", ec8 >= 7.2,
        "speedup(8)=" + fmt(ec8)));
    fig.checks.push_back(check(
        "ECperf gains little beyond 12 CPUs",
        ec15 <= ec.yAt(12) * 1.15,
        "speedup(12)=" + fmt(ec.yAt(12)) + " speedup(15)=" + fmt(ec15)));
    fig.checks.push_back(check(
        "SPECjbb scales sub-linearly and flattens",
        jbb10 <= 9.0 && jbb15 <= jbb10 * 1.5,
        "speedup(10)=" + fmt(jbb10) + " speedup(15)=" + fmt(jbb15)));
    fig.checks.push_back(check(
        "ECperf outscales SPECjbb at its peak", ec_peak > jbb.maxY(),
        "ecperf peak=" + fmt(ec_peak) + " jbb peak=" + fmt(jbb.maxY())));

    fig.measured = {ec, jbb};
    fig.paperRef = {paper::fig4Ecperf(), paper::fig4SpecJbb()};
    fig.table = table;
    return fig;
}

// ---------------------------------------------------------------------
// Figure 5: execution mode breakdown
// ---------------------------------------------------------------------

FigureResult
runFig05(const FigureOptions &opt)
{
    const auto &sweep = scalingSweep(opt);

    FigureResult fig;
    fig.id = "fig05";
    fig.title = "Execution mode breakdown vs number of processors (%)";
    fig.metricsByPoint = scalingSweepMetrics(opt);

    auto frac = [](const RunResult &r, sim::Tick os::ModeBreakdown::*m) {
        return 100.0 * r.modes.fraction(r.modes.*m);
    };

    Series ec_user("ecperf-user"), ec_sys("ecperf-system"),
        ec_idle("ecperf-idle"), ec_gc("ecperf-gcidle");
    Series jbb_user("specjbb-user"), jbb_sys("specjbb-system"),
        jbb_idle("specjbb-idle"), jbb_gc("specjbb-gcidle");

    Table table({"cpus", "ec-user", "ec-sys", "ec-idle", "ec-gcidle",
                 "jbb-user", "jbb-sys", "jbb-idle", "jbb-gcidle"});
    for (const auto &p : sweep) {
        auto m = [&](const std::vector<RunResult> &rs,
                     sim::Tick os::ModeBreakdown::*field) {
            return meanOf(rs, [&](const RunResult &r) {
                return frac(r, field);
            });
        };
        const double eu = m(p.ecperf, &os::ModeBreakdown::user);
        const double es = m(p.ecperf, &os::ModeBreakdown::system);
        const double ei = m(p.ecperf, &os::ModeBreakdown::idle);
        const double eg = m(p.ecperf, &os::ModeBreakdown::gcIdle);
        const double ju = m(p.jbb, &os::ModeBreakdown::user);
        const double js = m(p.jbb, &os::ModeBreakdown::system);
        const double ji = m(p.jbb, &os::ModeBreakdown::idle);
        const double jg = m(p.jbb, &os::ModeBreakdown::gcIdle);
        ec_user.add(p.cpus, eu);
        ec_sys.add(p.cpus, es);
        ec_idle.add(p.cpus, ei);
        ec_gc.add(p.cpus, eg);
        jbb_user.add(p.cpus, ju);
        jbb_sys.add(p.cpus, js);
        jbb_idle.add(p.cpus, ji);
        jbb_gc.add(p.cpus, jg);
        table.addRow({fmt(p.cpus, 0), fmt(eu, 1), fmt(es, 1),
                      fmt(ei, 1), fmt(eg, 1), fmt(ju, 1), fmt(js, 1),
                      fmt(ji, 1), fmt(jg, 1)});
    }

    // Part of the system-time rise is bus queueing inside kernel
    // paths; the directory plane removes it, so the growth floor
    // softens there (the absolute 20% floor still applies).
    const bool fig5_bus =
        opt.protocol == sim::CoherenceProtocol::SnoopBus;
    fig.checks.push_back(check(
        "ECperf system time grows substantially with CPUs",
        ec_sys.yAt(15) >= (fig5_bus ? 2.2 : 1.8) * ec_sys.yAt(1) &&
            ec_sys.yAt(15) >= 20.0,
        "system(1)=" + fmt(ec_sys.yAt(1), 1) + "% system(15)=" +
            fmt(ec_sys.yAt(15), 1) + "%"));
    fig.checks.push_back(check(
        "SPECjbb spends essentially no system time",
        jbb_sys.yAt(15) <= 6.0,
        "system(15)=" + fmt(jbb_sys.yAt(15), 1) + "%"));
    fig.checks.push_back(check(
        "Significant non-GC idle time appears on large systems",
        jbb_idle.yAt(15) >= 12.0,
        "jbb idle(15)=" + fmt(jbb_idle.yAt(15), 1) + "%"));
    fig.checks.push_back(check(
        "GC idle is a minor slice of total idle",
        jbb_gc.yAt(15) <= jbb_idle.yAt(15),
        "gcidle(15)=" + fmt(jbb_gc.yAt(15), 1) + "% idle(15)=" +
            fmt(jbb_idle.yAt(15), 1) + "%"));

    fig.measured = {ec_user, ec_sys, ec_idle, ec_gc,
                    jbb_user, jbb_sys, jbb_idle, jbb_gc};
    fig.paperRef = {paper::fig5EcperfSystem(), paper::fig5EcperfIdle(),
                    paper::fig5SpecJbbSystem(),
                    paper::fig5SpecJbbIdle()};
    fig.table = table;
    return fig;
}

// ---------------------------------------------------------------------
// Figure 6: CPI breakdown
// ---------------------------------------------------------------------

FigureResult
runFig06(const FigureOptions &opt)
{
    const auto &sweep = scalingSweep(opt);

    FigureResult fig;
    fig.id = "fig06";
    fig.title = "CPI breakdown vs number of processors";
    fig.metricsByPoint = scalingSweepMetrics(opt);

    Series ec_cpi("ecperf-cpi"), jbb_cpi("specjbb-cpi");
    Series ec_ds("ecperf-datastall"), jbb_ds("specjbb-datastall");
    Series ec_is("ecperf-istall"), jbb_is("specjbb-istall");

    Table table({"cpus", "ec-cpi", "ec-istall", "ec-dstall",
                 "jbb-cpi", "jbb-istall", "jbb-dstall",
                 "paper-ec-cpi", "paper-jbb-cpi"});
    for (const auto &p : sweep) {
        auto cpi = [](const RunResult &r) { return r.cpi.cpi(); };
        auto dstall = [](const RunResult &r) {
            return r.cpi.cpi() * r.cpi.fraction(r.cpi.dataStall());
        };
        auto istall = [](const RunResult &r) {
            return r.cpi.cpi() * r.cpi.fraction(r.cpi.iStall);
        };
        const double ec = meanOf(p.ecperf, cpi);
        const double ed = meanOf(p.ecperf, dstall);
        const double ei = meanOf(p.ecperf, istall);
        const double jc = meanOf(p.jbb, cpi);
        const double jd = meanOf(p.jbb, dstall);
        const double ji = meanOf(p.jbb, istall);
        ec_cpi.add(p.cpus, ec, stdOf(p.ecperf, cpi));
        jbb_cpi.add(p.cpus, jc, stdOf(p.jbb, cpi));
        ec_ds.add(p.cpus, ed);
        jbb_ds.add(p.cpus, jd);
        ec_is.add(p.cpus, ei);
        jbb_is.add(p.cpus, ji);
        table.addRow({fmt(p.cpus, 0), fmt(ec), fmt(ei), fmt(ed),
                      fmt(jc), fmt(ji), fmt(jd),
                      fmt(paper::fig6EcperfCpi().yAt(p.cpus)),
                      fmt(paper::fig6SpecJbbCpi().yAt(p.cpus))});
    }

    // Residual gap (EXPERIMENTS.md): the paper reports +40%/+33%;
    // our sparser reference stream yields a shallower but clearly
    // monotone rise driven by memory-system stalls. The paper's
    // growth figures are for a snooping bus; a directory machine has
    // no shared-bus queueing, so its CPI rise is milder — that is the
    // point of a directory — and the floor softens accordingly.
    const double ec_growth = ec_cpi.yAt(15) / ec_cpi.yAt(1);
    const double jbb_growth = jbb_cpi.yAt(15) / jbb_cpi.yAt(1);
    const bool on_bus = opt.protocol == sim::CoherenceProtocol::SnoopBus;
    fig.checks.push_back(check(
        "CPI grows with processor count (both workloads)",
        ec_growth > (on_bus ? 1.08 : 1.02) &&
            jbb_growth > (on_bus ? 1.03 : 1.02),
        "ecperf x" + fmt(ec_growth) + " jbb x" + fmt(jbb_growth)));
    fig.checks.push_back(check(
        "Memory-system stalls drive the CPI increase",
        (ec_ds.yAt(15) - ec_ds.yAt(1)) >
            0.5 * (ec_is.yAt(15) - ec_is.yAt(1)) &&
        (jbb_ds.yAt(15) - jbb_ds.yAt(1)) >
            (jbb_is.yAt(15) - jbb_is.yAt(1)),
        "ec dstall " + fmt(ec_ds.yAt(1)) + "->" + fmt(ec_ds.yAt(15)) +
            ", jbb dstall " + fmt(jbb_ds.yAt(1)) + "->" +
            fmt(jbb_ds.yAt(15))));
    fig.checks.push_back(check(
        "CPIs are moderate for commercial workloads (< 3.2)",
        ec_cpi.maxY() < 3.2 && jbb_cpi.maxY() < 3.2,
        "max ec=" + fmt(ec_cpi.maxY()) + " max jbb=" +
            fmt(jbb_cpi.maxY())));

    fig.measured = {ec_cpi, jbb_cpi, ec_ds, jbb_ds, ec_is, jbb_is};
    fig.paperRef = {paper::fig6EcperfCpi(), paper::fig6SpecJbbCpi()};
    fig.table = table;
    return fig;
}

// ---------------------------------------------------------------------
// Figure 7: data stall decomposition
// ---------------------------------------------------------------------

FigureResult
runFig07(const FigureOptions &opt)
{
    const auto &sweep = scalingSweep(opt);

    FigureResult fig;
    fig.id = "fig07";
    fig.title = "Data stall time decomposition vs processors";
    fig.metricsByPoint = scalingSweepMetrics(opt);

    Series ec_c2c("ecperf-c2c-share"), jbb_c2c("specjbb-c2c-share");
    Series ec_mem("ecperf-mem-share"), jbb_mem("specjbb-mem-share");

    Table table({"cpus", "wl", "storebuf", "raw", "l2hit", "c2c",
                 "mem", "other"});
    auto addRows = [&](const char *wl,
                       const std::vector<RunResult> &runs,
                       unsigned cpus, Series &c2c_series,
                       Series &mem_series) {
        auto share = [&](sim::Tick cpu::CpiBreakdown::*field) {
            return meanOf(runs, [&](const RunResult &r) {
                const double ds =
                    static_cast<double>(r.cpi.dataStall());
                return ds > 0
                    ? static_cast<double>(r.cpi.*field) / ds
                    : 0.0;
            });
        };
        const double sb = share(&cpu::CpiBreakdown::dsStoreBuf);
        const double raw = share(&cpu::CpiBreakdown::dsRaw);
        const double l2 = share(&cpu::CpiBreakdown::dsL2Hit);
        const double c2c = share(&cpu::CpiBreakdown::dsC2C);
        const double mem = share(&cpu::CpiBreakdown::dsMemory);
        const double other = share(&cpu::CpiBreakdown::dsOther);
        c2c_series.add(cpus, c2c);
        mem_series.add(cpus, mem);
        table.addRow({fmt(cpus, 0), wl, fmt(sb), fmt(raw), fmt(l2),
                      fmt(c2c), fmt(mem), fmt(other)});
    };

    for (const auto &p : sweep) {
        addRows("ecperf", p.ecperf, p.cpus, ec_c2c, ec_mem);
        addRows("specjbb", p.jbb, p.cpus, jbb_c2c, jbb_mem);
    }

    fig.checks.push_back(check(
        "c2c share of data stall grows with processors",
        ec_c2c.yAt(15) > ec_c2c.yAt(2) &&
            jbb_c2c.yAt(15) > jbb_c2c.yAt(2),
        "ec " + fmt(ec_c2c.yAt(2)) + "->" + fmt(ec_c2c.yAt(15)) +
            ", jbb " + fmt(jbb_c2c.yAt(2)) + "->" +
            fmt(jbb_c2c.yAt(15))));
    fig.checks.push_back(check(
        "c2c transfers are a major data-stall component at scale",
        ec_c2c.yAt(15) >= 0.25 && jbb_c2c.yAt(15) >= 0.12,
        "ec(15)=" + fmt(ec_c2c.yAt(15)) + " jbb(15)=" +
            fmt(jbb_c2c.yAt(15))));

    // Store-buffer and RAW stalls as fractions of *total execution*:
    // the paper reports 1-2% and ~1%.
    auto exec_share = [&](const std::vector<RunResult> &runs,
                          sim::Tick cpu::CpiBreakdown::*field) {
        return meanOf(runs, [&](const RunResult &r) {
            return r.cpi.fraction(r.cpi.*field);
        });
    };
    const auto &big = sweep.back();
    const double sb_exec =
        exec_share(big.jbb, &cpu::CpiBreakdown::dsStoreBuf);
    const double raw_exec =
        exec_share(big.jbb, &cpu::CpiBreakdown::dsRaw);
    fig.checks.push_back(check(
        "store buffer stalls are a small fraction of execution",
        sb_exec < 0.05, "storebuf=" + fmt(100 * sb_exec, 2) + "%"));
    fig.checks.push_back(check(
        "RAW hazard stalls are a small fraction of execution",
        raw_exec < 0.04, "raw=" + fmt(100 * raw_exec, 2) + "%"));

    fig.measured = {ec_c2c, jbb_c2c, ec_mem, jbb_mem};
    fig.paperRef = {paper::fig7EcperfC2cShare(),
                    paper::fig7SpecJbbC2cShare()};
    fig.table = table;
    return fig;
}

// ---------------------------------------------------------------------
// Figure 8: cache-to-cache transfer ratio
// ---------------------------------------------------------------------

FigureResult
runFig08(const FigureOptions &opt)
{
    const auto &sweep = scalingSweep(opt);

    FigureResult fig;
    fig.id = "fig08";
    fig.title = "Cache-to-cache transfer ratio (% of L2 misses)";
    fig.metricsByPoint = scalingSweepMetrics(opt);

    auto ratio = [](const RunResult &r) {
        return 100.0 * r.cache.c2cRatio();
    };

    Series ec("ecperf"), jbb("specjbb");
    Table table({"cpus", "ecperf", "+-", "specjbb", "+-", "paper-ec",
                 "paper-jbb"});
    for (const auto &p : sweep) {
        const double e = meanOf(p.ecperf, ratio);
        const double j = meanOf(p.jbb, ratio);
        ec.add(p.cpus, e, stdOf(p.ecperf, ratio));
        jbb.add(p.cpus, j, stdOf(p.jbb, ratio));
        table.addRow({fmt(p.cpus, 0), fmt(e, 1),
                      fmt(stdOf(p.ecperf, ratio), 1), fmt(j, 1),
                      fmt(stdOf(p.jbb, ratio), 1),
                      fmt(paper::fig8Ecperf().yAt(p.cpus), 0),
                      fmt(paper::fig8SpecJbb().yAt(p.cpus), 0)});
    }

    // Residual gap (EXPERIMENTS.md): the paper reaches >60% at 14
    // CPUs; our capacity-miss denominator stays larger, so the rise
    // is steep in relative terms but tops out near 15-30%. The rise
    // itself is a MOSI-bus claim: an O-state owner supplies every
    // reader, so dirty sharing converts misses to c2c transfers as
    // CPUs are added. Directory MESI has no O state — clean sharers
    // are served by the home — so there the qualitative claim is
    // only that communication stays substantial, not that its share
    // keeps rising.
    const bool fig8_bus =
        opt.protocol == sim::CoherenceProtocol::SnoopBus;
    fig.checks.push_back(check(
        fig8_bus ? "ratio rises substantially with processor count"
                 : "c2c share stays substantial (MESI: home serves "
                   "clean sharers, no O-state supply)",
        fig8_bus ? (jbb.yAt(14) >= 1.4 * jbb.yAt(2) &&
                    jbb.yAt(14) >= 11.0 &&
                    ec.yAt(14) >= 1.4 * ec.yAt(2))
                 : (jbb.yAt(14) >= 8.0 && ec.yAt(14) >= 15.0),
        "jbb " + fmt(jbb.yAt(2), 1) + "% -> " + fmt(jbb.yAt(14), 1) +
            "%, ec " + fmt(ec.yAt(2), 1) + "% -> " +
            fmt(ec.yAt(14), 1) + "%"));
    fig.checks.push_back(check(
        "transfers occur even with one application CPU (OS activity)",
        ec.yAt(1) > 0.0 && jbb.yAt(1) > 0.0,
        "ec(1)=" + fmt(ec.yAt(1), 2) + "% jbb(1)=" +
            fmt(jbb.yAt(1), 2) + "%"));
    fig.checks.push_back(check(
        "both workloads show comparable sharing behavior",
        std::abs(ec.yAt(14) - jbb.yAt(14)) <
            0.6 * std::max(ec.yAt(14), jbb.yAt(14)),
        "ec(14)=" + fmt(ec.yAt(14), 1) + "% jbb(14)=" +
            fmt(jbb.yAt(14), 1) + "%"));

    fig.measured = {ec, jbb};
    fig.paperRef = {paper::fig8Ecperf(), paper::fig8SpecJbb()};
    fig.table = table;
    return fig;
}

// ---------------------------------------------------------------------
// Figure 9: effect of garbage collection on scaling
// ---------------------------------------------------------------------

FigureResult
runFig09(const FigureOptions &opt)
{
    const auto &sweep = scalingSweep(opt);

    FigureResult fig;
    fig.id = "fig09";
    fig.title = "Effect of garbage collection on throughput scaling";
    fig.metricsByPoint = scalingSweepMetrics(opt);

    auto tput = [](const RunResult &r) { return r.throughput; };
    auto tput_nogc = [](const RunResult &r) {
        // Factor the collection time out of the runtime.
        const double gc = r.gcFraction();
        return gc < 0.95 ? r.throughput / (1.0 - gc) : r.throughput;
    };

    const double ec_base = meanOf(sweep.front().ecperf, tput);
    const double jbb_base = meanOf(sweep.front().jbb, tput);
    const double ec_base_n = meanOf(sweep.front().ecperf, tput_nogc);
    const double jbb_base_n = meanOf(sweep.front().jbb, tput_nogc);

    Series ec("ecperf"), ecn("ecperf-nogc");
    Series jbb("specjbb"), jbbn("specjbb-nogc");
    Table table({"cpus", "ecperf", "ecperf-nogc", "specjbb",
                 "specjbb-nogc"});
    for (const auto &p : sweep) {
        const double e = meanOf(p.ecperf, tput) / ec_base;
        const double en = meanOf(p.ecperf, tput_nogc) / ec_base_n;
        const double j = meanOf(p.jbb, tput) / jbb_base;
        const double jn = meanOf(p.jbb, tput_nogc) / jbb_base_n;
        ec.add(p.cpus, e);
        ecn.add(p.cpus, en);
        jbb.add(p.cpus, j);
        jbbn.add(p.cpus, jn);
        table.addRow({fmt(p.cpus, 0), fmt(e), fmt(en), fmt(j),
                      fmt(jn)});
    }

    // GC helps the no-GC curve, but only modestly: it explains a
    // small part of the gap to linear speedup.
    const double jbb_gap = 15.0 - jbb.yAt(15);
    const double jbb_gc_gain = jbbn.yAt(15) - jbb.yAt(15);
    fig.checks.push_back(check(
        "removing GC time closes only a fraction of the speedup gap",
        jbb_gap > 0 && jbb_gc_gain < 0.6 * jbb_gap,
        "gap=" + fmt(jbb_gap) + " gc-gain=" + fmt(jbb_gc_gain)));
    fig.checks.push_back(check(
        "no-GC speedup is at least the measured speedup",
        jbbn.yAt(15) >= jbb.yAt(15) * 0.98 &&
            ecn.yAt(15) >= ec.yAt(15) * 0.98,
        "jbb " + fmt(jbb.yAt(15)) + " vs nogc " + fmt(jbbn.yAt(15))));

    fig.measured = {ec, ecn, jbb, jbbn};
    fig.paperRef = {paper::fig4Ecperf(), paper::fig4SpecJbb()};
    fig.table = table;
    return fig;
}

// ---------------------------------------------------------------------
// Figure 10: copyback rate over time (GC windows)
// ---------------------------------------------------------------------

namespace
{

/** The Figure 10 experiment configuration. */
ExperimentSpec
fig10Spec(const FigureOptions &opt)
{
    ExperimentSpec spec = scalingSpec(WorkloadKind::SpecJbb, 8, opt);
    spec.measure = static_cast<sim::Tick>(340'000'000 * opt.timeScale);
    // A larger young generation for the timeline: with a compressed
    // nursery a noticeable fraction of from-space is still cached,
    // blurring the copyback collapse the paper observes.
    spec.sys.jvm.heap.newGenBytes = 48ULL << 20;
    return spec;
}

std::string
encodeFig10(const Fig10Data &d)
{
    sim::ByteWriter w;
    w.u64(d.t0);
    w.vecU64(d.bins);
    w.u64(d.gcWindows.size());
    for (const auto &[start, end] : d.gcWindows) {
        w.u64(start);
        w.u64(end);
    }
    w.str(d.point);
    encodeSnapshot(w, d.snap);
    return w.take();
}

bool
decodeFig10(const std::string &payload, Fig10Data &out)
{
    sim::ByteReader r(payload);
    Fig10Data d;
    d.t0 = r.u64();
    d.bins = r.vecU64();
    const std::uint64_t windows = r.u64();
    for (std::uint64_t i = 0; r.ok() && i < windows; ++i) {
        const sim::Tick start = r.u64();
        const sim::Tick end = r.u64();
        d.gcWindows.emplace_back(start, end);
    }
    d.point = r.str();
    d.snap = decodeSnapshot(r);
    if (!r.atEnd())
        return false;
    out = std::move(d);
    return true;
}

Fig10Data
fig10Leaf(const FigureOptions &opt)
{
    const ExperimentSpec spec = fig10Spec(opt);
    BuiltWorkload workload;
    auto system = buildSystem(spec, workload);
    system->run(spec.warmup);
    system->beginMeasurement();

    // Timeline bins are indexed by absolute time.
    const sim::Tick t0 = system->now();
    system->memory().enableTimeline(
        fig10BinWidth,
        static_cast<unsigned>((t0 + spec.measure) / fig10BinWidth) + 2);
    system->run(spec.measure);

    Fig10Data d;
    d.t0 = t0;
    d.bins = system->memory().timeline()->bins();
    for (const auto &rec : system->vm().stats().log)
        d.gcWindows.emplace_back(rec.start, rec.start + rec.duration);
    d.point = pointName(spec);
    d.snap = collectMetrics(*system, spec, workload);
    return d;
}

} // namespace

Fig10Data
cachedFig10Data(const FigureOptions &opt)
{
    const std::string key = encodeSpecKey(fig10Spec(opt));
    RunCache &cache = RunCache::global();
    std::string payload;
    if (cache.fetch("fig10", key, payload)) {
        Fig10Data d;
        if (decodeFig10(payload, d))
            return d;
        warn("cache: undecodable 'fig10' payload; re-simulating");
    }
    Fig10Data fresh = fig10Leaf(opt);
    cache.store("fig10", key, encodeFig10(fresh));
    return fresh;
}

FigureResult
runFig10(const FigureOptions &opt)
{
    FigureResult fig;
    fig.id = "fig10";
    fig.title =
        "Cache-to-cache transfers per second over time (SPECjbb)";

    const Fig10Data data = cachedFig10Data(opt);
    const sim::Tick bin = fig10BinWidth;
    const sim::Tick t0 = data.t0;
    const auto &timeline = data.bins;
    const auto first_bin = static_cast<std::size_t>(t0 / bin);

    // Normalize to the peak rate, as the paper does.
    std::uint64_t peak = 1;
    for (std::size_t b = first_bin; b < timeline.size(); ++b)
        peak = std::max(peak, timeline[b]);

    Series rate("specjbb-c2c-rate");
    Table table({"t(ms)", "c2c-rate(norm)", "gc-active"});

    // Identify GC windows from the collection log.
    // A bin counts as in-GC only when it lies fully inside the
    // collection window (edge bins mix application activity).
    auto inGc = [&](sim::Tick lo, sim::Tick hi) {
        for (const auto &[start, end] : data.gcWindows) {
            if (lo >= start && hi <= end)
                return true;
        }
        return false;
    };

    double in_sum = 0, in_n = 0, out_sum = 0, out_n = 0;
    for (std::size_t b = first_bin; b < timeline.size(); ++b) {
        const sim::Tick t = static_cast<sim::Tick>(b) * bin;
        const double norm = static_cast<double>(timeline[b]) /
                            static_cast<double>(peak);
        const bool gc = inGc(t, t + bin);
        rate.add(1000.0 * sim::ticksToSeconds(t - t0), norm);
        if (gc) {
            in_sum += norm;
            in_n += 1;
        } else {
            out_sum += norm;
            out_n += 1;
        }
        if (b % 4 == 0) {
            table.addRow({fmt(1000.0 * sim::ticksToSeconds(t - t0), 1),
                          fmt(norm), gc ? "yes" : "no"});
        }
    }

    fig.metricsByPoint.emplace(data.point, data.snap);

    const double in_mean = in_n ? in_sum / in_n : 0.0;
    const double out_mean = out_n ? out_sum / out_n : 1.0;
    fig.checks.push_back(check(
        "at least 3 collections occur in the interval",
        data.gcWindows.size() >= 3,
        std::to_string(data.gcWindows.size()) + " collections"));
    fig.checks.push_back(check(
        "copyback rate collapses during garbage collection",
        in_n > 0 && in_mean < 0.35 * out_mean,
        "mean in-GC=" + fmt(in_mean, 3) + " out-GC=" +
            fmt(out_mean, 3)));

    fig.measured = {rate};
    fig.table = table;
    return fig;
}

} // namespace middlesim::core
