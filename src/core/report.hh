/**
 * @file
 * Rendering of figure reproductions (tables + shape-check verdicts).
 */

#ifndef CORE_REPORT_HH
#define CORE_REPORT_HH

#include <ostream>

#include "core/figures.hh"

namespace middlesim::core
{

/** Print one reproduced figure: header, table, checks, verdict. */
void printFigure(const FigureResult &fig, std::ostream &os);

/**
 * Apply the persistent-cache selection to the global RunCache:
 * `--no-cache` disables the disk layer, `--cache-dir=PATH` selects
 * it explicitly, and otherwise the MIDDLESIM_CACHE environment
 * variable (when set and non-empty) enables it. The in-process memo
 * is always active; outputs are byte-identical either way.
 */
void configureRunCache(const std::string &cache_dir, bool no_cache);

/**
 * Standard main() body for the per-figure bench binaries: runs the
 * harness with options from the environment, prints the report, and
 * returns 0 when every shape check passes (1 otherwise).
 *
 * When argv is forwarded, `--jobs=N` selects the worker count of the
 * process-wide thread pool (equivalent to MIDDLESIM_JOBS=N; the flag
 * wins). `--jobs=1` forces fully serial execution. `--cache-dir=PATH`
 * / `--no-cache` control the persistent run cache (see
 * configureRunCache); `--metrics-out=PATH` writes the figure's
 * metrics document. `--protocol=snoop|directory` and `--numa-nodes=N`
 * override the coherence protocol / NUMA topology of every measured
 * point (equivalent to MIDDLESIM_PROTOCOL / MIDDLESIM_NUMA_NODES).
 */
int figureMain(FigureResult (*harness)(const FigureOptions &),
               int argc = 0, char **argv = nullptr);

} // namespace middlesim::core

#endif // CORE_REPORT_HH
