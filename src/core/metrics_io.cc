#include "core/metrics_io.hh"

namespace middlesim::core
{

std::string
pointName(const ExperimentSpec &spec)
{
    std::string name =
        spec.workload == WorkloadKind::SpecJbb ? "jbb" : "ecperf";
    name += "/app=" + std::to_string(spec.appCpus);
    name += "/total=" + std::to_string(spec.totalCpus);
    name += "/l2x" + std::to_string(spec.cpusPerL2);
    name += "/scale=" + std::to_string(spec.resolvedScale());
    // Non-default protocol/topology only, so every point name of the
    // existing snooping-bus corpus is unchanged.
    if (spec.protocol != sim::CoherenceProtocol::SnoopBus)
        name += std::string("/") + sim::toString(spec.protocol);
    if (spec.numaNodes != 1)
        name += "/numa=" + std::to_string(spec.numaNodes);
    if (spec.topology != sim::Topology::Ring)
        name += std::string("/") + sim::toString(spec.topology);
    if (spec.dirOccupancy != 0)
        name += "/occ=" + std::to_string(spec.dirOccupancy);
    name += "/seed=" + std::to_string(spec.seed);
    return name;
}

namespace
{

void
exportCpi(sim::MetricRegistry &reg, const std::string &prefix,
          const cpu::CpiBreakdown &cpi)
{
    reg.counter(prefix + ".instructions").set(cpi.instructions);
    reg.counter(prefix + ".cycles.base").set(cpi.base);
    reg.counter(prefix + ".cycles.istall").set(cpi.iStall);
    reg.counter(prefix + ".cycles.ds_storebuf").set(cpi.dsStoreBuf);
    reg.counter(prefix + ".cycles.ds_raw").set(cpi.dsRaw);
    reg.counter(prefix + ".cycles.ds_l2hit").set(cpi.dsL2Hit);
    reg.counter(prefix + ".cycles.ds_c2c").set(cpi.dsC2C);
    reg.counter(prefix + ".cycles.ds_memory").set(cpi.dsMemory);
    reg.counter(prefix + ".cycles.ds_other").set(cpi.dsOther);
    reg.gauge(prefix + ".cpi").set(cpi.cpi());
}

void
exportModes(sim::MetricRegistry &reg, const std::string &prefix,
            const os::ModeBreakdown &modes)
{
    reg.counter(prefix + ".user").set(modes.user);
    reg.counter(prefix + ".system").set(modes.system);
    reg.counter(prefix + ".io").set(modes.io);
    reg.counter(prefix + ".idle").set(modes.idle);
    reg.counter(prefix + ".gc_idle").set(modes.gcIdle);
}

void
exportCache(sim::MetricRegistry &reg, const std::string &prefix,
            const mem::CacheStats &st)
{
    reg.counter(prefix + ".ifetches").set(st.ifetches);
    reg.counter(prefix + ".loads").set(st.loads);
    reg.counter(prefix + ".stores").set(st.stores);
    reg.counter(prefix + ".atomics").set(st.atomics);
    reg.counter(prefix + ".l1i_hits").set(st.l1iHits);
    reg.counter(prefix + ".l1d_hits").set(st.l1dHits);
    reg.counter(prefix + ".l2_accesses").set(st.l2Accesses);
    reg.counter(prefix + ".l2_hits").set(st.l2Hits);
    reg.counter(prefix + ".miss_cold").set(st.missCold);
    reg.counter(prefix + ".miss_coherence").set(st.missCoherence);
    reg.counter(prefix + ".miss_capacity").set(st.missCapacity);
    reg.counter(prefix + ".c2c_transfers").set(st.c2cTransfers);
    reg.counter(prefix + ".upgrades").set(st.upgrades);
    reg.counter(prefix + ".writebacks").set(st.writebacks);
    reg.counter(prefix + ".block_stores").set(st.blockStores);
    reg.counter(prefix + ".instr_misses").set(st.instrMisses);
    reg.counter(prefix + ".data_misses").set(st.dataMisses);
}

} // namespace

sim::MetricSnapshot
collectMetrics(System &system, const ExperimentSpec &spec,
               const BuiltWorkload &workload)
{
    sim::MetricRegistry &reg = system.metrics();

    exportCpi(reg, "cpu.app", system.appCpi());
    exportModes(reg, "os.modes.app", system.appModes());
    exportModes(reg, "os.modes.all", system.scheduler().allModes());
    reg.counter("os.sched.context_switches")
        .set(system.scheduler().contextSwitches());
    exportCache(reg, "mem.app", system.appCacheStats());
    exportCache(reg, "mem.all", system.memory().aggregateAll());

    const mem::Bus &bus = system.memory().bus();
    reg.counter("mem.bus.transactions").set(bus.transactions());
    reg.counter("mem.bus.busy_cycles").set(bus.busyCycles());
    reg.counter("mem.bus.queue_delay").set(bus.totalQueueDelay());

    for (const auto &region : system.memory().regions()) {
        const std::string prefix = "mem.region." + region.name;
        reg.counter(prefix + ".miss_cold").set(region.missCold);
        reg.counter(prefix + ".miss_coherence")
            .set(region.missCoherence);
        reg.counter(prefix + ".miss_capacity").set(region.missCapacity);
    }

    const jvm::Jvm::Stats &gc = system.vm().stats();
    reg.counter("jvm.gc.minor").set(gc.minorCollections);
    reg.counter("jvm.gc.major").set(gc.majorCollections);
    reg.counter("jvm.gc.pause_cycles").set(gc.totalPause);
    reg.gauge("jvm.heap.old_used_mb")
        .set(static_cast<double>(system.vm().heap().oldUsed()) /
             (1024.0 * 1024.0));

    const unsigned num_types =
        spec.workload == WorkloadKind::SpecJbb
            ? workload::jbbNumTxTypes
            : workload::ecperfNumTxTypes;
    for (unsigned t = 0; t < num_types; ++t) {
        reg.counter("workload.tx.type" + std::to_string(t))
            .set(system.txCount(t));
    }
    reg.counter("workload.tx.total").set(system.txTotal());
    reg.gauge("workload.throughput").set(system.throughput());
    if (workload.ecperf) {
        const auto &bc = workload.ecperf->beanCache();
        reg.counter("workload.beancache.hits").set(bc.hits());
        reg.counter("workload.beancache.misses").set(bc.misses());
        reg.counter("workload.beancache.evictions")
            .set(bc.evictions());
        reg.gauge("workload.beancache.hit_rate").set(bc.hitRate());
    }
    if (workload.jbb) {
        reg.counter("workload.jbb.outstanding_orders")
            .set(workload.jbb->outstandingOrders());
    }

    reg.gauge("sys.measured_seconds").set(system.measuredSeconds());

    return reg.snapshot();
}

void
writeMetricsJson(std::ostream &os, const std::string &figure,
                 const MetricsMap &points)
{
    os << "{\n  \"schema\": \"" << metricsSchemaVersion
       << "\",\n  \"figure\": \"" << sim::jsonEscape(figure)
       << "\",\n  \"points\": {";
    bool first = true;
    for (const auto &[name, snap] : points) {
        os << (first ? "\n" : ",\n") << "    \""
           << sim::jsonEscape(name) << "\":\n";
        snap.writeJson(os, 4);
        first = false;
    }
    if (!first)
        os << '\n' << "  ";
    os << "}\n}\n";
}

} // namespace middlesim::core
