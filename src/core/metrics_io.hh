/**
 * @file
 * Metrics export: snapshot-time aggregation and the versioned
 * metrics JSON document.
 *
 * collectMetrics() folds every layer's aggregate statistics (CPI
 * stall buckets, execution modes, cache/coherence/bus counters,
 * region miss attribution, GC, workload transactions) into the
 * System's MetricRegistry — which already holds the live counters,
 * series and journal — and freezes the result into a MetricSnapshot.
 * Figure harnesses attach one snapshot per (spec, seed) grid point
 * under a canonical point name; writeMetricsJson() serializes the
 * whole set as one schema-versioned document. All maps are sorted
 * and all numbers deterministically formatted, so the document is
 * byte-identical for any --jobs count.
 */

#ifndef CORE_METRICS_IO_HH
#define CORE_METRICS_IO_HH

#include <map>
#include <ostream>
#include <string>

#include "core/experiment.hh"
#include "sim/metrics.hh"

namespace middlesim::core
{

/** Schema identifier embedded in every metrics document. */
inline constexpr const char *metricsSchemaVersion =
    "middlesim-metrics-v1";

/**
 * Canonical name of a grid point: workload, machine shape, scale and
 * seed — unique per (spec, seed).
 */
std::string pointName(const ExperimentSpec &spec);

/**
 * Export all aggregate statistics of `system` into its registry and
 * return the frozen snapshot. Call after the measured interval.
 */
sim::MetricSnapshot collectMetrics(System &system,
                                   const ExperimentSpec &spec,
                                   const BuiltWorkload &workload);

/** Named grid-point snapshots of one figure run (sorted by name). */
using MetricsMap = std::map<std::string, sim::MetricSnapshot>;

/**
 * Serialize `points` as the versioned metrics document:
 *   {"schema": ..., "figure": <id>, "points": {<name>: <snapshot>}}
 */
void writeMetricsJson(std::ostream &os, const std::string &figure,
                      const MetricsMap &points);

} // namespace middlesim::core

#endif // CORE_METRICS_IO_HH
