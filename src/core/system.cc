#include "core/system.hh"

#include <algorithm>

#include "sim/log.hh"

namespace middlesim::core
{

System::System(const SystemConfig &config, std::uint64_t seed)
    : cfg_(config), rng_(seed)
{
    cfg_.machine.validate();
    mem_ = std::make_unique<mem::Hierarchy>(cfg_.machine, cfg_.latency,
                                            cfg_.busContention,
                                            &metrics_);
    sched_ = std::make_unique<os::Scheduler>(cfg_.machine.totalCpus,
                                             cfg_.machine.appCpus,
                                             cfg_.rechoose, &metrics_);
    kernel_ = std::make_unique<os::KernelModel>(cfg_.kernel);
    jvm_ = std::make_unique<jvm::Jvm>(cfg_.jvm, rng_.fork(), &metrics_);

    cores_.reserve(cfg_.machine.totalCpus);
    for (unsigned c = 0; c < cfg_.machine.totalCpus; ++c) {
        cores_.push_back(std::make_unique<cpu::InOrderCore>(
            c, *mem_, cfg_.core, rng_.fork()));
        cpuRngs_.push_back(rng_.fork());
    }
    current_.assign(cfg_.machine.totalCpus, -1);
    sliceEnd_.assign(cfg_.machine.totalCpus, 0);
    txCounts_.assign(16, 0);

    if (cfg_.osBackground) {
        for (unsigned c = 0; c < cfg_.machine.totalCpus; ++c) {
            addProgram(kernel_->makeHousekeeper(c, rng_.fork()),
                       /*in_app_set=*/false, /*bound_cpu=*/
                       static_cast<int>(c));
        }
    }
}

void
System::setTraceSink(mem::TraceSink *sink)
{
    trace_ = sink;
    mem_->setTraceSink(sink);
    sched_->setTraceSink(sink);
    tracedMode_.assign(cfg_.machine.totalCpus, -1);
}

void
System::enableChecking(const check::CheckOptions &opts)
{
    if (checker_)
        return;
    checker_ = std::make_unique<check::Checker>(*mem_, *sched_, *jvm_,
                                                cfg_.gcCpu, opts);
}

void
System::account(unsigned cpu, exec::ExecMode mode, sim::Tick before)
{
    const sim::Tick now = cores_[cpu]->now();
    sched_->accountMode(cpu, mode, now - before);
    if (trace_ && tracedMode_[cpu] != static_cast<int>(mode)) {
        tracedMode_[cpu] = static_cast<int>(mode);
        trace_->annotation(mem::TraceAnnotation::ModeSwitch, cpu, now,
                           static_cast<std::uint64_t>(mode));
    }
}

unsigned
System::addProgram(std::unique_ptr<exec::ThreadProgram> program,
                   bool in_app_set, int bound_cpu)
{
    const unsigned tid =
        sched_->addThread(program.get(), in_app_set, bound_cpu);
    programs_.push_back(std::move(program));
    return tid;
}

void
System::run(sim::Tick duration)
{
    const sim::Tick end = now_ + duration;
    while (now_ < end) {
        startGcIfNeeded();
        const sim::Tick window_end = now_ + cfg_.window;
        for (unsigned c = 0; c < cfg_.machine.totalCpus; ++c)
            runCpu(c, window_end);
        mem_->advanceContentionEpoch(cfg_.window);
        now_ = window_end;
        if (cfg_.samplePeriod > 0 && now_ >= nextSample_) {
            sampleSeries();
            nextSample_ = now_ + cfg_.samplePeriod;
        }
    }
}

void
System::sampleSeries()
{
    const double mb = 1024.0 * 1024.0;
    metrics_.series("sys.heap.young_used_mb", cfg_.samplePeriod)
        .push(static_cast<double>(jvm_->heap().youngUsed()) / mb);
    metrics_.series("sys.heap.old_used_mb", cfg_.samplePeriod)
        .push(static_cast<double>(jvm_->heap().oldUsed()) / mb);
    metrics_.series("sys.sched.runnable", cfg_.samplePeriod)
        .push(static_cast<double>(sched_->runnableCount()));
}

void
System::runCpu(unsigned cpu, sim::Tick window_end)
{
    cpu::InOrderCore &core = *cores_[cpu];
    while (core.now() < window_end) {
        int tid = current_[cpu];
        if (tid < 0) {
            tid = sched_->pickFor(cpu, core.now(), gcActive_);
            if (tid < 0) {
                // Idle in short quanta and re-poll: a wakeup (lock
                // handoff, timer) must be able to claim this CPU
                // promptly within the window.
                const bool gc_idle = gcActive_ &&
                    cpu < cfg_.machine.appCpus && cpu != cfg_.gcCpu;
                const sim::Tick quantum = std::min<sim::Tick>(
                    500, window_end - core.now());
                sched_->accountIdle(cpu, quantum, gc_idle);
                core.advanceTo(core.now() + quantum);
                continue;
            }
            current_[cpu] = tid;
            sliceEnd_[cpu] = core.now() + cfg_.timeslice;
            chargeContextSwitch(cpu);
            sched_->countContextSwitch();
        }

        os::SimThread &t = sched_->thread(static_cast<unsigned>(tid));

        // Safepoint: application threads drain off the CPUs while a
        // stop-the-world collection is in progress.
        if (gcActive_ && t.inAppSet) {
            sched_->yield(static_cast<unsigned>(tid), core.now());
            current_[cpu] = -1;
            continue;
        }

        burstBuf_.clear();
        const exec::NextOp op =
            t.program->next(burstBuf_, core.now());
        const bool keeps =
            executeOp(cpu, static_cast<unsigned>(tid), op);
        if (!keeps) {
            current_[cpu] = -1;
            continue;
        }
        if (core.now() >= sliceEnd_[cpu] && t.heldLocks == 0) {
            sched_->yield(static_cast<unsigned>(tid), core.now());
            current_[cpu] = -1;
        }
    }
}

bool
System::executeOp(unsigned cpu, unsigned tid, const exec::NextOp &op)
{
    cpu::InOrderCore &core = *cores_[cpu];
    os::SimThread &t = sched_->thread(tid);
    const sim::Tick before = core.now();

    switch (op.kind) {
      case exec::OpKind::Burst:
        executeBurst(core, burstBuf_);
        account(cpu, burstBuf_.mode, before);
        return true;

      case exec::OpKind::LockAcquire: {
        core.atomic(op.lock->lineAddr());
        if (op.lock->isSpinLock()) {
            // Adaptive kernel mutex: contenders spin (in op.mode,
            // typically system time) instead of blocking; the charge
            // grows with the number of threads inside the section.
            const unsigned inside =
                std::min(op.lock->spinEnter(), 6u);
            if (inside > 0) {
                const sim::Tick spin = cfg_.spinBase * 2 *
                    static_cast<sim::Tick>(inside) *
                    static_cast<sim::Tick>(inside);
                core.atomic(op.lock->lineAddr());
                core.execInstructions(static_cast<std::uint64_t>(
                    static_cast<double>(spin) / cfg_.core.baseCpi) + 1);
            }
            // Hold the CPU until the matching release: a preempted
            // spin-section holder would convoy every other CPU.
            ++t.heldLocks;
            account(cpu, op.mode, before);
            return true;
        }
        if (op.lock->tryAcquire(static_cast<int>(tid))) {
            ++t.heldLocks;
            account(cpu, op.mode, before);
            return true;
        }
        // Brief spin (probe the lock line) before parking: Java
        // monitors spin a bounded amount regardless of queue depth.
        const sim::Tick spin = cfg_.spinBase;
        core.atomic(op.lock->lineAddr());
        core.execInstructions(static_cast<std::uint64_t>(
            static_cast<double>(spin) / cfg_.core.baseCpi) + 1);
        op.lock->enqueue(tid);
        sched_->block(tid);
        account(cpu, op.mode, before);
        return false;
      }

      case exec::OpKind::LockRelease: {
        if (op.lock->isSpinLock()) {
            core.store(op.lock->lineAddr());
            op.lock->spinExit();
            sim_assert(t.heldLocks > 0, "spin-lock count underflow");
            --t.heldLocks;
            account(cpu, op.mode, before);
            return true;
        }
        sim_assert(op.lock->owner() == static_cast<int>(tid),
                   "release by non-owner of ", op.lock->name());
        core.store(op.lock->lineAddr());
        sim_assert(t.heldLocks > 0, "lock count underflow");
        --t.heldLocks;
        const int next = op.lock->release();
        if (next >= 0) {
            // Ownership handoff: the woken thread resumes past its
            // acquire already holding the lock, and is dispatched
            // ahead of ordinary runnable threads (turnstile).
            ++sched_->thread(static_cast<unsigned>(next)).heldLocks;
            sched_->wake(static_cast<unsigned>(next), /*front=*/true,
                         core.now());
        }
        account(cpu, op.mode, before);
        return true;
      }

      case exec::OpKind::PoolAcquire: {
        core.atomic(op.pool->lineAddr());
        if (op.pool->tryAcquire()) {
            account(cpu, op.mode, before);
            return true;
        }
        op.pool->enqueue(tid);
        sched_->block(tid);
        account(cpu, op.mode, before);
        return false;
      }

      case exec::OpKind::PoolRelease: {
        core.atomic(op.pool->lineAddr());
        const int next = op.pool->release();
        if (next >= 0) {
            sched_->wake(static_cast<unsigned>(next), /*front=*/true,
                         core.now(), /*migratable=*/true);
        }
        account(cpu, op.mode, before);
        return true;
      }

      case exec::OpKind::Wait:
        sched_->blockUntil(tid, core.now() + op.wait);
        return false;

      case exec::OpKind::TxDone:
        if (op.txType >= txCounts_.size())
            txCounts_.resize(op.txType + 1, 0);
        ++txCounts_[op.txType];
        ++t.txCompleted;
        if (trace_)
            trace_->annotation(mem::TraceAnnotation::TxBoundary, cpu,
                               core.now(), op.txType);
        // Completion bookkeeping; also guarantees forward progress.
        core.execInstructions(50);
        account(cpu, op.mode, before);
        return true;

      case exec::OpKind::Exit:
        sched_->finish(tid);
        if (static_cast<int>(tid) == gcTid_)
            finishGc();
        return false;
    }
    panic("unreachable op kind");
}

void
System::executeBurst(cpu::InOrderCore &core, const exec::Burst &burst)
{
    const std::uint64_t n = burst.instructions;
    const std::size_t nrefs = burst.refs.size();
    std::uint64_t code_off = 0;

    auto exec_chunk = [&](std::uint64_t count) {
        while (count > 0) {
            const std::uint64_t step = std::min<std::uint64_t>(count, 16);
            if (burst.code.bytes > 0) {
                core.fetchBlock(burst.code.base + code_off);
                code_off += 64;
                if (code_off >= burst.code.bytes)
                    code_off = 0;
            }
            core.execInstructions(step);
            count -= step;
        }
    };

    const std::uint64_t per_slot =
        nrefs ? n / (nrefs + 1) : n;
    for (std::size_t i = 0; i < nrefs; ++i) {
        exec_chunk(per_slot);
        const exec::DataRef &ref = burst.refs[i];
        switch (ref.type) {
          case mem::AccessType::Load:
            core.load(ref.addr);
            break;
          case mem::AccessType::Store:
            core.store(ref.addr);
            break;
          case mem::AccessType::Atomic:
            core.atomic(ref.addr);
            break;
          case mem::AccessType::BlockStore:
            core.blockStore(ref.addr);
            break;
          case mem::AccessType::IFetch:
            core.fetchBlock(ref.addr);
            break;
        }
    }
    exec_chunk(n - per_slot * nrefs);
}

void
System::chargeContextSwitch(unsigned cpu)
{
    cpu::InOrderCore &core = *cores_[cpu];
    burstBuf_.clear();
    kernel_->fillSwitchBurst(burstBuf_, cpuRngs_[cpu], cpu);
    const sim::Tick before = core.now();
    executeBurst(core, burstBuf_);
    account(cpu, exec::ExecMode::System, before);
}

void
System::startGcIfNeeded()
{
    if (gcActive_ || !jvm_->gcRequested())
        return;
    gcActive_ = true;
    gcStart_ = now_;
    gcProgram_ = jvm_->beginCollection();
    gcTid_ = static_cast<int>(
        sched_->addThread(gcProgram_.get(), /*in_app_set=*/false,
                          static_cast<int>(cfg_.gcCpu)));
    metrics_.journal().record(now_, "gc.begin");
    metrics_.journal().record(now_, "safepoint.begin");
    if (trace_) {
        trace_->annotation(mem::TraceAnnotation::GcBegin, cfg_.gcCpu,
                           now_, 0);
        trace_->annotation(mem::TraceAnnotation::SafepointBegin,
                           cfg_.gcCpu, now_, 0);
    }
}

void
System::finishGc()
{
    sim_assert(gcActive_, "finishGc without active GC");
    const sim::Tick end = cores_[cfg_.gcCpu]->now();
    jvm_->endCollection(gcStart_, end);
    const jvm::GcRecord &rec = jvm_->stats().log.back();
    metrics_.journal().record(
        end, rec.major ? "gc.end.major" : "gc.end.minor",
        "pause=" + std::to_string(rec.duration));
    metrics_.journal().record(end, "safepoint.end");
    if (trace_) {
        trace_->annotation(rec.major
                               ? mem::TraceAnnotation::GcEndMajor
                               : mem::TraceAnnotation::GcEndMinor,
                           cfg_.gcCpu, end, rec.duration);
        trace_->annotation(mem::TraceAnnotation::SafepointEnd,
                           cfg_.gcCpu, end, 0);
    }
    gcActive_ = false;
    gcTid_ = -1;
}

void
System::beginMeasurement()
{
    if (trace_)
        trace_->annotation(mem::TraceAnnotation::MeasureBegin, 0, now_,
                           0);
    metrics_.reset();
    mem_->resetStats();
    for (auto &core : cores_)
        core->resetStats();
    sched_->resetAccounting();
    std::fill(txCounts_.begin(), txCounts_.end(), 0);
    jvm_->resetStats();
    measureStart_ = now_;
    nextSample_ = now_ + cfg_.samplePeriod;
}

double
System::measuredSeconds() const
{
    return sim::ticksToSeconds(measuredTicks());
}

std::uint64_t
System::txCount(unsigned type) const
{
    return type < txCounts_.size() ? txCounts_[type] : 0;
}

std::uint64_t
System::txTotal() const
{
    std::uint64_t total = 0;
    for (auto c : txCounts_)
        total += c;
    return total;
}

double
System::throughput() const
{
    const double secs = measuredSeconds();
    return secs > 0.0 ? static_cast<double>(txTotal()) / secs : 0.0;
}

cpu::CpiBreakdown
System::appCpi() const
{
    cpu::CpiBreakdown out;
    for (unsigned c = 0; c < cfg_.machine.appCpus; ++c)
        out.accumulate(cores_[c]->breakdown());
    return out;
}

os::ModeBreakdown
System::appModes() const
{
    return sched_->appModes();
}

mem::CacheStats
System::appCacheStats() const
{
    return mem_->aggregateRange(0, cfg_.machine.appCpus - 1);
}

} // namespace middlesim::core
