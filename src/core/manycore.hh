/**
 * @file
 * Many-core extrapolation harness (directory MESI + NUMA topology).
 *
 * The paper measures a 16-processor snooping-bus E6000; this harness
 * asks how its workload conclusions extrapolate when the machine
 * grows past any snooping ceiling: SPECjbb is re-run at 16/64/128/
 * 256/512 processors under the full-map directory MESI protocol with
 * block-interleaved per-node memory homes (one NUMA node per 16
 * processors beyond the first point). A matched 16-CPU snooping point
 * anchors the curves to the paper's machine.
 *
 * Reported per point (Figures 14-16 style curves over CPU count):
 * data misses per 1000 instructions, the coherence share of those
 * misses, the remote-miss fraction and mean interconnect hops per
 * miss, and directory protocol message counts per miss.
 *
 * Intervals time-compress beyond 64 CPUs (measured work per CPU
 * shrinks as 64/cpus) so the 512-CPU point stays simulable; the table
 * flags the compression factor per point and the BENCH harness carries
 * it as an honesty flag.
 *
 * A contended companion grid re-runs 64/128/256 CPUs with the home
 * occupancy/NACK model armed (DESIGN.md §3.15) under both the ring
 * and the dimension-ordered-XY mesh interconnect, re-deriving the
 * paper's Figure 14/15-style communication-latency distributions as
 * mem.dir.lat.* CDFs per point. Its shape checks pin the queueing
 * claims: delay grows with machine size on the bisection-limited
 * ring, the mesh beats the ring at scale, and honest runs never break
 * a livelock bound. The contention-free grid above is byte-identical
 * with or without this companion (occupancy 0 registers none of the
 * contended counters).
 */

#ifndef CORE_MANYCORE_HH
#define CORE_MANYCORE_HH

#include "core/figures.hh"

namespace middlesim::core
{

/** The processor counts of the many-core sweep. */
const std::vector<unsigned> &manycoreCpuCounts();

/** NUMA nodes used at a given CPU count (1 node per 16 CPUs). */
unsigned manycoreNodesFor(unsigned cpus);

/** Interval compression applied at a given CPU count (<= 1.0). */
double manycoreTimeCompression(unsigned cpus);

/**
 * The spec of one many-core point: SPECjbb, private L2s, directory
 * protocol (or the snooping bus for the matched anchor point).
 */
ExperimentSpec
manycoreSpec(unsigned cpus, sim::CoherenceProtocol protocol,
             const FigureOptions &opt);

/** The flattened grid (snoop anchor + every directory point). */
std::vector<ExperimentSpec>
manycoreGridSpecs(const FigureOptions &opt);

/** Home occupancy slots armed at the contended points. */
unsigned manycoreDirOccupancy();

/** CPU counts of the contended ring-vs-mesh comparison. */
const std::vector<unsigned> &manycoreContendedCpuCounts();

/**
 * One contended point: the directory machine of manycoreSpec with
 * bounded home occupancy and the given interconnect topology.
 */
ExperimentSpec
manycoreContendedSpec(unsigned cpus, sim::Topology topology,
                      const FigureOptions &opt);

/** The contended companion grid (ring + mesh per CPU count). */
std::vector<ExperimentSpec>
manycoreContendedGridSpecs(const FigureOptions &opt);

/** The many-core figure: tables, curves and shape checks. */
FigureResult runManycore(const FigureOptions &opt = {});

} // namespace middlesim::core

#endif // CORE_MANYCORE_HH
