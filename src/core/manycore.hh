/**
 * @file
 * Many-core extrapolation harness (directory MESI + NUMA topology).
 *
 * The paper measures a 16-processor snooping-bus E6000; this harness
 * asks how its workload conclusions extrapolate when the machine
 * grows past any snooping ceiling: SPECjbb is re-run at 16/64/128/
 * 256/512 processors under the full-map directory MESI protocol with
 * block-interleaved per-node memory homes (one NUMA node per 16
 * processors beyond the first point). A matched 16-CPU snooping point
 * anchors the curves to the paper's machine.
 *
 * Reported per point (Figures 14-16 style curves over CPU count):
 * data misses per 1000 instructions, the coherence share of those
 * misses, the remote-miss fraction and mean interconnect hops per
 * miss, and directory protocol message counts per miss.
 *
 * Intervals time-compress beyond 64 CPUs (measured work per CPU
 * shrinks as 64/cpus) so the 512-CPU point stays simulable; the table
 * flags the compression factor per point and the BENCH harness carries
 * it as an honesty flag.
 */

#ifndef CORE_MANYCORE_HH
#define CORE_MANYCORE_HH

#include "core/figures.hh"

namespace middlesim::core
{

/** The processor counts of the many-core sweep. */
const std::vector<unsigned> &manycoreCpuCounts();

/** NUMA nodes used at a given CPU count (1 node per 16 CPUs). */
unsigned manycoreNodesFor(unsigned cpus);

/** Interval compression applied at a given CPU count (<= 1.0). */
double manycoreTimeCompression(unsigned cpus);

/**
 * The spec of one many-core point: SPECjbb, private L2s, directory
 * protocol (or the snooping bus for the matched anchor point).
 */
ExperimentSpec
manycoreSpec(unsigned cpus, sim::CoherenceProtocol protocol,
             const FigureOptions &opt);

/** The flattened grid (snoop anchor + every directory point). */
std::vector<ExperimentSpec>
manycoreGridSpecs(const FigureOptions &opt);

/** The many-core figure: tables, curves and shape checks. */
FigureResult runManycore(const FigureOptions &opt = {});

} // namespace middlesim::core

#endif // CORE_MANYCORE_HH
