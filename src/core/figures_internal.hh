/**
 * @file
 * Leaf simulation tasks shared by the figure harnesses and the
 * all-figures runner.
 *
 * Every figure ultimately consumes a small set of leaf payloads:
 * plain runGrid points (Figures 4-9/16) plus the custom-instrumented
 * runs below (timeline, live-memory, cache-sweep, communication).
 * Each cached*() function is a pure function of its arguments, is
 * safe to call from thread-pool workers, and is memoized through
 * core/cache.hh under the kind named in its comment — so run_all can
 * prefetch one deduplicated work queue and the individual harnesses
 * then assemble their figures entirely from memo hits.
 */

#ifndef CORE_FIGURES_INTERNAL_HH
#define CORE_FIGURES_INTERNAL_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/figures.hh"
#include "mem/sweep.hh"
#include "stats/distribution.hh"

namespace middlesim::core
{

/** Figure 10 timeline run payload (cache kind "fig10"). */
struct Fig10Data
{
    /** Simulated time when measurement began. */
    sim::Tick t0 = 0;
    /** Copyback counts per absolute bin (width fig10BinWidth). */
    std::vector<std::uint64_t> bins;
    /** Collection windows: (start, end), in absolute ticks. */
    std::vector<std::pair<sim::Tick, sim::Tick>> gcWindows;
    std::string point;
    sim::MetricSnapshot snap;
};

/** Timeline bin width of Figure 10 (~1 ms at 248 MHz). */
inline constexpr sim::Tick fig10BinWidth = 250'000;

Fig10Data cachedFig10Data(const FigureOptions &opt);

/** One Figure 11 measurement (cache kind "live"). */
struct LivePoint
{
    double mb = 0.0;
    std::string point;
    sim::MetricSnapshot snap;
};

LivePoint cachedLivePoint(WorkloadKind kind, unsigned scale,
                          const FigureOptions &opt);

/** Figure 11 scale sweeps (index-aligned pairs of runs). */
const std::vector<unsigned> &fig11JbbScales();
const std::vector<unsigned> &fig11EcperfScales();

/** One Figure 12/13 uniprocessor sweep (cache kind "sweep"). */
struct SweepOutcome
{
    std::vector<mem::SweepResult> icache;
    std::vector<mem::SweepResult> dcache;
    std::uint64_t instructions = 0;
    std::string point;
    sim::MetricSnapshot snap;

    double
    imissPer1000(std::size_t i) const
    {
        return icache[i].missesPer1000(instructions);
    }

    double
    dmissPer1000(std::size_t i) const
    {
        return dcache[i].missesPer1000(instructions);
    }
};

SweepOutcome cachedSweepOutcome(WorkloadKind kind, unsigned scale,
                                const FigureOptions &opt);

/** One Figure 14/15 communication run (cache kind "comm"). */
struct CommPoint
{
    stats::ConcentrationCurve curve{std::vector<std::uint64_t>{}};
    std::uint64_t touchedLines = 0;
    std::string point;
    sim::MetricSnapshot snap;
};

CommPoint cachedCommFootprint(WorkloadKind kind, unsigned cpus,
                              unsigned scale, const FigureOptions &opt);

/** The flattened grid of the Figure 4-9 scaling sweep. */
std::vector<ExperimentSpec> scalingGridSpecs(const FigureOptions &opt);

/** The Figure 16 shared-cache grid. */
std::vector<ExperimentSpec> fig16GridSpecs(const FigureOptions &opt);

} // namespace middlesim::core

#endif // CORE_FIGURES_INTERNAL_HH
