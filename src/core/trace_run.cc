#include "core/trace_run.hh"

#include <cstdlib>
#include <filesystem>

#include "core/cache.hh"
#include "core/metrics_io.hh"
#include "sim/log.hh"
#include "trace/reader.hh"

namespace middlesim::core
{

namespace
{

/** Tracing directories; set once at driver startup, then read-only. */
std::string gTraceOut;
std::string gTraceIn;

/** Copy the comparison payloads out of a post-replay hierarchy. */
template <typename Outcome>
void
collectHierarchyState(const mem::Hierarchy &h, unsigned total_cpus,
                      unsigned app_cpus, Outcome &out)
{
    out.perCpu.reserve(total_cpus);
    for (unsigned c = 0; c < total_cpus; ++c)
        out.perCpu.push_back(h.cpuStats(c));
    out.aggregate = h.aggregateRange(0, app_cpus - 1);
    out.c2cLines = h.c2cPerLine().sortedItems();
    out.touchedLines = h.touchedLines();
    out.regions = h.regions();
}

} // namespace

void
configureTracing(const std::string &out_dir, const std::string &in_dir)
{
    gTraceOut = out_dir;
    gTraceIn = in_dir;
    if (!gTraceOut.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(gTraceOut, ec);
        if (ec) {
            warn("trace: cannot create '", gTraceOut,
                 "': ", ec.message());
            gTraceOut.clear();
        }
    }
}

void
configureTracingFromFlags(std::string out_dir, std::string in_dir)
{
    if (out_dir.empty() && in_dir.empty()) {
        if (const char *env = std::getenv("MIDDLESIM_TRACE")) {
            if (*env != '\0') {
                out_dir = env;
                in_dir = env;
            }
        }
    }
    configureTracing(out_dir, in_dir);
}

const std::string &
traceOutDir()
{
    return gTraceOut;
}

const std::string &
traceInDir()
{
    return gTraceIn;
}

std::string
traceFileName(const ExperimentSpec &spec)
{
    const std::string key = encodeSpecKey(spec);
    return "trace-" + sim::hashHex(sim::fnv1a64("trace\x1f" + key)) +
           trace::traceFileExt;
}

std::string
traceFilePath(const std::string &dir, const ExperimentSpec &spec)
{
    return dir + "/" + traceFileName(spec);
}

trace::TraceHeader
traceHeaderFor(System &system, const ExperimentSpec &spec)
{
    const mem::Hierarchy &h = system.memory();
    trace::TraceHeader header;
    header.specKey = encodeSpecKey(spec);
    header.label = pointName(spec);
    const sim::MachineConfig &m = h.config();
    header.totalCpus = m.totalCpus;
    header.appCpus = m.appCpus;
    header.cpusPerL2 = m.cpusPerL2;
    header.protocol = m.protocol;
    header.numaNodes = m.numaNodes;
    header.topology = m.topology;
    header.dirOccupancy = m.dirOccupancy;
    header.l1i = m.l1i;
    header.l1d = m.l1d;
    header.l2 = m.l2;
    header.latency = h.latency();
    header.busContention = spec.sys.busContention;
    header.trackCommunication = spec.trackCommunication;
    header.seed = spec.seed;
    header.warmupTicks = spec.warmup;
    header.measureTicks = spec.measure;
    for (const mem::Hierarchy::Region &region : h.regions())
        header.regions.push_back(
            {region.name, region.base, region.bytes});
    return header;
}

std::unique_ptr<trace::TraceWriter>
beginTraceRecording(System &system, const ExperimentSpec &spec)
{
    if (gTraceOut.empty())
        return nullptr;
    const std::string path = traceFilePath(gTraceOut, spec);
    if (trace::traceFileExists(path))
        return nullptr; // record once: the artifact already exists
    auto writer = std::make_unique<trace::TraceWriter>(
        traceHeaderFor(system, spec), path);
    system.setTraceSink(writer.get());
    return writer;
}

void
finishTraceRecording(std::unique_ptr<trace::TraceWriter> writer,
                     System &system, const ExperimentSpec &spec)
{
    if (!writer)
        return;
    writer->annotation(mem::TraceAnnotation::Instructions, 0,
                       system.now(), system.appCpi().instructions);
    system.setTraceSink(nullptr);
    const std::uint64_t refs = writer->refCount();
    if (writer->close()) {
        inform("trace: recorded ", refs, " refs for ",
               pointName(spec), " -> ",
               traceFilePath(gTraceOut, spec));
    } else {
        warn("trace: failed to write '",
             traceFilePath(gTraceOut, spec), "'");
    }
}

TraceRecordOutcome
recordTraceRun(const ExperimentSpec &spec, const std::string &path)
{
    BuiltWorkload workload;
    auto system = buildSystem(spec, workload);

    std::unique_ptr<trace::TraceWriter> writer;
    if (path.empty()) {
        writer = std::make_unique<trace::TraceWriter>(
            traceHeaderFor(*system, spec));
    } else {
        writer = std::make_unique<trace::TraceWriter>(
            traceHeaderFor(*system, spec), path);
    }
    system->setTraceSink(writer.get());

    TraceRecordOutcome out;
    out.result = measure(*system, spec, workload);
    writer->annotation(mem::TraceAnnotation::Instructions, 0,
                       system->now(), out.result.cpi.instructions);
    system->setTraceSink(nullptr);

    const mem::Hierarchy &h = system->memory();
    collectHierarchyState(h, spec.totalCpus, spec.appCpus, out);
    if (path.empty()) {
        out.traceData = writer->take();
    } else if (!writer->close()) {
        fatal("trace: failed to write '", path, "'");
    }
    return out;
}

HierarchyReplayOutcome
replayTraceHierarchy(std::string trace_data,
                     const trace::ReplayOverrides &overrides)
{
    HierarchyReplayOutcome out;
    trace::TraceReader reader(std::move(trace_data));
    if (!reader.ok()) {
        out.error = reader.error();
        return out;
    }
    out.header = reader.header();
    auto hierarchy = trace::hierarchyFor(out.header, overrides);
    out.counts = trace::replayTrace(reader, hierarchy.get(), nullptr);
    if (!reader.complete()) {
        out.error = reader.error();
        return out;
    }
    const sim::MachineConfig &m = hierarchy->config();
    collectHierarchyState(*hierarchy, m.totalCpus, out.header.appCpus,
                          out);
    out.valid = true;
    return out;
}

SweepReplayOutcome
replayTraceSweep(std::string trace_data, mem::SweepEngine engine)
{
    SweepReplayOutcome out;
    trace::TraceReader reader(std::move(trace_data));
    if (!reader.ok()) {
        out.error = reader.error();
        return out;
    }
    out.header = reader.header();
    mem::SweepSimulator sweep{mem::SweepSimulator::paperSweep(),
                              engine};
    out.engine = sweep.engineName();
    out.counts = trace::replayTrace(reader, nullptr, &sweep);
    if (!reader.complete()) {
        out.error = reader.error();
        return out;
    }
    out.icache = sweep.icacheResults();
    out.dcache = sweep.dcacheResults();
    out.instructions = sweep.instructions();
    out.valid = true;
    return out;
}

SweepReplayOutcome
replayTraceSweepPerConfig(const std::string &trace_data)
{
    SweepReplayOutcome out;
    out.engine = "per-config-replay";
    const std::vector<sim::CacheParams> configs =
        mem::SweepSimulator::paperSweep();
    for (const sim::CacheParams &params : configs) {
        trace::TraceReader reader(trace_data);
        if (!reader.ok()) {
            out.error = reader.error();
            return out;
        }
        out.header = reader.header();
        mem::SweepSimulator sweep{{params}, mem::SweepEngine::Legacy};
        out.counts = trace::replayTrace(reader, nullptr, &sweep);
        if (!reader.complete()) {
            out.error = reader.error();
            return out;
        }
        out.icache.push_back(sweep.icacheResults().front());
        out.dcache.push_back(sweep.dcacheResults().front());
        out.instructions = sweep.instructions();
    }
    out.valid = true;
    return out;
}

std::vector<HierarchyReplayOutcome>
replayTraceSharing(std::string trace_data,
                   const std::vector<unsigned> &degrees)
{
    std::vector<HierarchyReplayOutcome> outs(degrees.size());
    trace::TraceReader reader(std::move(trace_data));
    if (!reader.ok()) {
        for (HierarchyReplayOutcome &out : outs)
            out.error = reader.error();
        return outs;
    }

    std::vector<std::unique_ptr<mem::Hierarchy>> hierarchies;
    std::vector<mem::Hierarchy *> raw;
    hierarchies.reserve(degrees.size());
    raw.reserve(degrees.size());
    for (std::size_t i = 0; i < degrees.size(); ++i) {
        outs[i].header = reader.header();
        hierarchies.push_back(trace::hierarchyFor(
            reader.header(), trace::ReplayOverrides{0, degrees[i]}));
        raw.push_back(hierarchies.back().get());
    }

    const trace::ReplayCounts counts =
        trace::replayTraceFanout(reader, raw, nullptr);
    if (!reader.complete()) {
        for (HierarchyReplayOutcome &out : outs)
            out.error = reader.error();
        return outs;
    }
    for (std::size_t i = 0; i < degrees.size(); ++i) {
        outs[i].counts = counts;
        const sim::MachineConfig &m = hierarchies[i]->config();
        collectHierarchyState(*hierarchies[i], m.totalCpus,
                              outs[i].header.appCpus, outs[i]);
        outs[i].valid = true;
    }
    return outs;
}

} // namespace middlesim::core
