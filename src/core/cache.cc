#include "core/cache.hh"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "sim/log.hh"

namespace middlesim::core
{

namespace
{

// ---------------------------------------------------------------------
// Coverage guard: encodeSpecKey() must serialize every field of the
// spec and of every nested parameter struct. Adding a field (almost
// always) changes the struct size, so each struct's size is pinned
// here for the LP64 ABI the project targets; a mismatch is a compile
// error pointing at the encoder to update. When you add a field:
// extend the matching encode*() below, THEN update the pinned size.
// ---------------------------------------------------------------------

constexpr bool kLp64 = sizeof(void *) == 8;

template <typename T, std::size_t Expected>
constexpr bool sizePinned = !kLp64 || sizeof(T) == Expected;

#define MIDDLESIM_PIN_SIZE(type, expected)                              \
    static_assert(sizePinned<type, expected>,                           \
                  #type " changed size: update the matching encoder "   \
                  "in core/cache.cc (and bump cacheSchemaVersion), "    \
                  "then re-pin the size here")

MIDDLESIM_PIN_SIZE(sim::CacheParams, 16);
MIDDLESIM_PIN_SIZE(sim::MachineConfig, 80);
MIDDLESIM_PIN_SIZE(mem::LatencyModel, 72);
MIDDLESIM_PIN_SIZE(cpu::CoreParams, 32);
MIDDLESIM_PIN_SIZE(jvm::HeapParams, 32);
MIDDLESIM_PIN_SIZE(jvm::JvmParams, 96);
MIDDLESIM_PIN_SIZE(os::KernelParams, 40);
MIDDLESIM_PIN_SIZE(workload::SpecJbbParams, 200);
MIDDLESIM_PIN_SIZE(workload::EcperfParams, 144);
MIDDLESIM_PIN_SIZE(SystemConfig, 376);
MIDDLESIM_PIN_SIZE(ExperimentSpec, 792);

#undef MIDDLESIM_PIN_SIZE

void
encodeCacheParams(sim::ByteWriter &w, const sim::CacheParams &p)
{
    w.u64(p.sizeBytes);
    w.u32(p.assoc);
    w.u32(p.blockBytes);
}

void
encodeMachine(sim::ByteWriter &w, const sim::MachineConfig &m)
{
    w.u32(m.totalCpus);
    w.u32(m.appCpus);
    encodeCacheParams(w, m.l1i);
    encodeCacheParams(w, m.l1d);
    encodeCacheParams(w, m.l2);
    w.u32(m.cpusPerL2);
    w.u8(static_cast<std::uint8_t>(m.protocol));
    w.u32(m.numaNodes);
    w.u8(static_cast<std::uint8_t>(m.topology));
    w.u32(m.dirOccupancy);
}

void
encodeLatency(sim::ByteWriter &w, const mem::LatencyModel &l)
{
    w.u64(l.l1Hit);
    w.u64(l.l2Hit);
    w.u64(l.memory);
    w.u64(l.cacheToCache);
    w.u64(l.upgrade);
    w.u64(l.busOccupancy);
    w.u64(l.busAddrOccupancy);
    w.u64(l.hop);
    w.u64(l.directoryLookup);
}

void
encodeCore(sim::ByteWriter &w, const cpu::CoreParams &c)
{
    w.f64(c.baseCpi);
    w.u32(c.storeBufferDepth);
    w.f64(c.rawProbability);
    w.u64(c.rawPenalty);
}

void
encodeJvm(sim::ByteWriter &w, const jvm::JvmParams &j)
{
    w.u64(j.heap.heapBytes);
    w.u64(j.heap.newGenBytes);
    w.u64(j.heap.tlabBytes);
    w.u64(j.heap.overshootBytes);
    w.f64(j.survivorFraction);
    w.f64(j.promoteFraction);
    w.u64(j.gcInstrPerLine);
    w.u64(j.rootScanInstr);
    w.f64(j.majorThreshold);
    w.u64(j.maxInitStores);
    w.f64(j.minorReportFactor);
    w.u64(j.paperYoungBytes);
}

void
encodeKernel(sim::ByteWriter &w, const os::KernelParams &k)
{
    w.u64(k.netSendInstr);
    w.u64(k.netRecvInstr);
    w.u64(k.switchInstr);
    w.u64(k.housekeepInstr);
    w.u64(k.housekeepPeriod);
}

void
encodeJbb(sim::ByteWriter &w, const workload::SpecJbbParams &p)
{
    w.u32(p.warehouses);
    for (double m : p.mix)
        w.f64(m);
    w.u32(p.stockLevels);
    w.u32(p.stockFanout);
    w.u32(p.custLevels);
    w.u32(p.custFanout);
    w.u32(p.distLevels);
    w.u32(p.distFanout);
    w.u32(p.itemLevels);
    w.u32(p.itemFanout);
    w.u32(p.nodeBytes);
    w.u32(p.orderLinesMean);
    w.u32(p.deliveryBatch);
    w.u64(p.orderBytes);
    w.u64(p.tempAllocBytes);
    w.f64(p.remotePaymentProb);
    w.f64(p.remoteItemProb);
    w.f64(p.jvmLockProb);
    w.f64(p.hotLeafProb);
    w.f64(p.warmLeafProb);
    w.u64(p.stockHotLeaves);
    w.u64(p.custHotLeaves);
    w.u64(p.itemHotLeaves);
    w.u64(p.stockWarmLeaves);
    w.u64(p.custWarmLeaves);
    w.f64(p.instrScale);
}

void
encodeEcperf(sim::ByteWriter &w, const workload::EcperfParams &p)
{
    w.u32(p.injectionRate);
    w.u32(p.workerThreads);
    w.u32(p.connPoolSize);
    w.u32(p.tunedForCpus);
    for (double m : p.mix)
        w.f64(m);
    w.u64(p.keysPerOir);
    w.f64(p.beanZipf);
    w.u64(p.beanCacheCapacity);
    w.u32(p.beanBytes);
    w.u64(p.beanTtl);
    w.u64(p.dbLatencyMean);
    w.u64(p.supplierLatencyMean);
    w.u32(p.beansPerTx);
    w.u64(p.tempAllocBytes);
    w.f64(p.instrScale);
}

void
encodeSystemConfig(sim::ByteWriter &w, const SystemConfig &c)
{
    encodeMachine(w, c.machine);
    encodeLatency(w, c.latency);
    encodeCore(w, c.core);
    encodeJvm(w, c.jvm);
    encodeKernel(w, c.kernel);
    w.u8(c.busContention ? 1 : 0);
    w.u8(c.osBackground ? 1 : 0);
    w.u64(c.window);
    w.u64(c.timeslice);
    w.u64(c.spinBase);
    w.u64(c.rechoose);
    w.u32(c.gcCpu);
    w.u64(c.samplePeriod);
}

} // namespace

std::string
encodeSpecKey(const ExperimentSpec &spec)
{
    sim::ByteWriter w;
    w.str(cacheSchemaVersion);
    w.u8(spec.workload == WorkloadKind::SpecJbb ? 0 : 1);
    w.u32(spec.appCpus);
    w.u32(spec.totalCpus);
    w.u32(spec.cpusPerL2);
    w.u8(static_cast<std::uint8_t>(spec.protocol));
    w.u32(spec.numaNodes);
    w.u8(static_cast<std::uint8_t>(spec.topology));
    w.u32(spec.dirOccupancy);
    w.u32(spec.scale);
    w.u64(spec.warmup);
    w.u64(spec.measure);
    w.u64(spec.seed);
    w.u8(spec.trackCommunication ? 1 : 0);
    encodeSystemConfig(w, spec.sys);
    encodeJbb(w, spec.jbb);
    encodeEcperf(w, spec.ecperf);
    return w.take();
}

std::string
cacheFileName(const std::string &kind, const std::string &key)
{
    return kind + "-" + sim::hashHex(sim::fnv1a64(kind + "\x1f" + key)) +
           ".msc";
}

// ---------------------------------------------------------------------
// Payload codecs
// ---------------------------------------------------------------------

void
encodeSnapshot(sim::ByteWriter &w, const sim::MetricSnapshot &s)
{
    w.u64(s.counters.size());
    for (const auto &[name, v] : s.counters) {
        w.str(name);
        w.u64(v);
    }
    w.u64(s.gauges.size());
    for (const auto &[name, v] : s.gauges) {
        w.str(name);
        w.f64(v);
    }
    w.u64(s.histograms.size());
    for (const auto &[name, h] : s.histograms) {
        w.str(name);
        w.u64(h.count);
        w.u64(h.sum);
        w.vecU64(h.buckets);
    }
    w.u64(s.series.size());
    for (const auto &[name, d] : s.series) {
        w.str(name);
        w.u64(d.period);
        w.vecF64(d.values);
    }
    w.u64(s.events.size());
    for (const auto &e : s.events) {
        w.u64(e.tick);
        w.str(e.type);
        w.str(e.detail);
    }
    w.u64(s.eventsDropped);
}

sim::MetricSnapshot
decodeSnapshot(sim::ByteReader &r)
{
    sim::MetricSnapshot s;
    const std::uint64_t counters = r.u64();
    for (std::uint64_t i = 0; r.ok() && i < counters; ++i) {
        std::string name = r.str();
        s.counters.emplace(std::move(name), r.u64());
    }
    const std::uint64_t gauges = r.u64();
    for (std::uint64_t i = 0; r.ok() && i < gauges; ++i) {
        std::string name = r.str();
        s.gauges.emplace(std::move(name), r.f64());
    }
    const std::uint64_t histograms = r.u64();
    for (std::uint64_t i = 0; r.ok() && i < histograms; ++i) {
        std::string name = r.str();
        sim::MetricSnapshot::HistogramData h;
        h.count = r.u64();
        h.sum = r.u64();
        h.buckets = r.vecU64();
        s.histograms.emplace(std::move(name), std::move(h));
    }
    const std::uint64_t series = r.u64();
    for (std::uint64_t i = 0; r.ok() && i < series; ++i) {
        std::string name = r.str();
        sim::MetricSnapshot::SeriesData d;
        d.period = r.u64();
        d.values = r.vecF64();
        s.series.emplace(std::move(name), std::move(d));
    }
    const std::uint64_t events = r.u64();
    for (std::uint64_t i = 0; r.ok() && i < events; ++i) {
        sim::EventJournal::Event e;
        e.tick = r.u64();
        e.type = r.str();
        e.detail = r.str();
        s.events.push_back(std::move(e));
    }
    s.eventsDropped = r.u64();
    return s;
}

std::string
encodeRunResult(const RunResult &r)
{
    sim::ByteWriter w;
    w.f64(r.seconds);
    w.u64(r.txTotal);
    w.vecU64(r.txByType);
    w.f64(r.throughput);

    w.u64(r.cpi.instructions);
    w.u64(r.cpi.base);
    w.u64(r.cpi.iStall);
    w.u64(r.cpi.dsStoreBuf);
    w.u64(r.cpi.dsRaw);
    w.u64(r.cpi.dsL2Hit);
    w.u64(r.cpi.dsC2C);
    w.u64(r.cpi.dsMemory);
    w.u64(r.cpi.dsOther);

    w.u64(r.modes.user);
    w.u64(r.modes.system);
    w.u64(r.modes.io);
    w.u64(r.modes.idle);
    w.u64(r.modes.gcIdle);

    w.u64(r.cache.ifetches);
    w.u64(r.cache.loads);
    w.u64(r.cache.stores);
    w.u64(r.cache.atomics);
    w.u64(r.cache.l1iHits);
    w.u64(r.cache.l1dHits);
    w.u64(r.cache.l2Accesses);
    w.u64(r.cache.l2Hits);
    w.u64(r.cache.missCold);
    w.u64(r.cache.missCoherence);
    w.u64(r.cache.missCapacity);
    w.u64(r.cache.c2cTransfers);
    w.u64(r.cache.upgrades);
    w.u64(r.cache.writebacks);
    w.u64(r.cache.blockStores);
    w.u64(r.cache.instrMisses);
    w.u64(r.cache.dataMisses);

    w.u64(r.gcMinor);
    w.u64(r.gcMajor);
    w.u64(r.gcPause);
    w.f64(r.liveAfterMB);
    w.f64(r.beanHitRate);

    w.u8(r.metrics ? 1 : 0);
    if (r.metrics)
        encodeSnapshot(w, *r.metrics);
    return w.take();
}

bool
decodeRunResult(const std::string &payload, RunResult &out)
{
    sim::ByteReader r(payload);
    RunResult res;
    res.seconds = r.f64();
    res.txTotal = r.u64();
    res.txByType = r.vecU64();
    res.throughput = r.f64();

    res.cpi.instructions = r.u64();
    res.cpi.base = r.u64();
    res.cpi.iStall = r.u64();
    res.cpi.dsStoreBuf = r.u64();
    res.cpi.dsRaw = r.u64();
    res.cpi.dsL2Hit = r.u64();
    res.cpi.dsC2C = r.u64();
    res.cpi.dsMemory = r.u64();
    res.cpi.dsOther = r.u64();

    res.modes.user = r.u64();
    res.modes.system = r.u64();
    res.modes.io = r.u64();
    res.modes.idle = r.u64();
    res.modes.gcIdle = r.u64();

    res.cache.ifetches = r.u64();
    res.cache.loads = r.u64();
    res.cache.stores = r.u64();
    res.cache.atomics = r.u64();
    res.cache.l1iHits = r.u64();
    res.cache.l1dHits = r.u64();
    res.cache.l2Accesses = r.u64();
    res.cache.l2Hits = r.u64();
    res.cache.missCold = r.u64();
    res.cache.missCoherence = r.u64();
    res.cache.missCapacity = r.u64();
    res.cache.c2cTransfers = r.u64();
    res.cache.upgrades = r.u64();
    res.cache.writebacks = r.u64();
    res.cache.blockStores = r.u64();
    res.cache.instrMisses = r.u64();
    res.cache.dataMisses = r.u64();

    res.gcMinor = r.u64();
    res.gcMajor = r.u64();
    res.gcPause = r.u64();
    res.liveAfterMB = r.f64();
    res.beanHitRate = r.f64();

    if (r.u8())
        res.metrics = std::make_shared<sim::MetricSnapshot>(
            decodeSnapshot(r));
    if (!r.atEnd())
        return false;
    out = std::move(res);
    return true;
}

// ---------------------------------------------------------------------
// RunCache
// ---------------------------------------------------------------------

RunCache &
RunCache::global()
{
    static RunCache cache;
    return cache;
}

void
RunCache::setDiskDir(std::string dir)
{
    std::lock_guard<std::mutex> lock(mutex_);
    dir_ = std::move(dir);
}

std::string
RunCache::diskDir() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return dir_;
}

bool
RunCache::fetch(const std::string &kind, const std::string &key,
                std::string &payload)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = memo_.find({kind, key});
        if (it != memo_.end()) {
            payload = it->second;
            ++stats_.memoryHits;
            return true;
        }
    }
    const DiskLoad disk = loadDisk(kind, key, payload);
    if (disk == DiskLoad::Hit) {
        std::lock_guard<std::mutex> lock(mutex_);
        memo_[{kind, key}] = payload;
        ++stats_.diskHits;
        return true;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.misses;
    if (disk == DiskLoad::Corrupt)
        ++stats_.corruptMisses;
    return false;
}

void
RunCache::store(const std::string &kind, const std::string &key,
                const std::string &payload)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        memo_[{kind, key}] = payload;
        ++stats_.stores;
    }
    storeDisk(kind, key, payload);
}

void
RunCache::clearMemory()
{
    std::lock_guard<std::mutex> lock(mutex_);
    memo_.clear();
}

RunCache::Stats
RunCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void
RunCache::resetStats()
{
    std::lock_guard<std::mutex> lock(mutex_);
    stats_ = Stats{};
}

RunCache::DiskLoad
RunCache::loadDisk(const std::string &kind, const std::string &key,
                   std::string &payload) const
{
    const std::string dir = diskDir();
    if (dir.empty())
        return DiskLoad::Absent;

    const std::string path = dir + "/" + cacheFileName(kind, key);
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return DiskLoad::Absent;
    std::ostringstream buf;
    buf << is.rdbuf();
    const std::string file = buf.str();

    // Any malformed content — wrong schema, foreign kind/key (hash
    // collision), truncation, checksum mismatch, trailing garbage —
    // degrades to a miss; the subsequent store() rewrites the entry
    // atomically (miss-and-rewrite). The file is NOT unlinked here: a
    // concurrent writer may be about to rename a good entry into
    // place, and removal could race against it.
    sim::ByteReader r(file);
    if (r.str() != cacheSchemaVersion || r.str() != kind ||
        r.str() != key) {
        return DiskLoad::Corrupt;
    }
    std::string data = r.str();
    const std::uint64_t checksum = r.u64();
    if (!r.atEnd() || checksum != sim::fnv1a64(data))
        return DiskLoad::Corrupt;
    payload = std::move(data);
    return DiskLoad::Hit;
}

void
RunCache::storeDisk(const std::string &kind, const std::string &key,
                    const std::string &payload) const
{
    const std::string dir = diskDir();
    if (dir.empty())
        return;

    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        warn("cache: cannot create '", dir, "': ", ec.message());
        return;
    }

    sim::ByteWriter w;
    w.str(cacheSchemaVersion);
    w.str(kind);
    w.str(key);
    w.str(payload);
    w.u64(sim::fnv1a64(payload));

    // Unique temp name + rename keeps concurrent writers (threads or
    // processes) from ever exposing a partial file.
    static std::atomic<std::uint64_t> seq{0};
    const std::string final_path = dir + "/" + cacheFileName(kind, key);
    const std::string tmp_path =
        final_path + ".tmp" + std::to_string(seq.fetch_add(1));
    {
        std::ofstream os(tmp_path, std::ios::binary | std::ios::trunc);
        if (!os) {
            warn("cache: cannot write '", tmp_path, "'");
            return;
        }
        os.write(w.data().data(),
                 static_cast<std::streamsize>(w.data().size()));
        if (!os) {
            os.close();
            std::filesystem::remove(tmp_path, ec);
            return;
        }
    }
    std::filesystem::rename(tmp_path, final_path, ec);
    if (ec) {
        warn("cache: cannot rename into '", final_path, "': ",
             ec.message());
        std::filesystem::remove(tmp_path, ec);
    }
}

// ---------------------------------------------------------------------
// Cached experiment execution
// ---------------------------------------------------------------------

RunResult
cachedRunExperiment(const ExperimentSpec &spec)
{
    const std::string key = encodeSpecKey(spec);
    RunCache &cache = RunCache::global();

    std::string payload;
    if (cache.fetch("run", key, payload)) {
        RunResult cached;
        if (decodeRunResult(payload, cached))
            return cached;
        warn("cache: undecodable 'run' payload; re-simulating");
    }

    RunResult fresh = runExperiment(spec);
    cache.store("run", key, encodeRunResult(fresh));
    return fresh;
}

} // namespace middlesim::core
