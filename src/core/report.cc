#include "core/report.hh"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "check/checker.hh"
#include "core/cache.hh"
#include "core/metrics_io.hh"
#include "core/trace_run.hh"
#include "sim/log.hh"
#include "sim/threadpool.hh"

namespace middlesim::core
{

void
configureRunCache(const std::string &cache_dir, bool no_cache)
{
    if (no_cache) {
        RunCache::global().setDiskDir("");
        return;
    }
    if (!cache_dir.empty()) {
        RunCache::global().setDiskDir(cache_dir);
        return;
    }
    if (const char *env = std::getenv("MIDDLESIM_CACHE")) {
        if (*env != '\0')
            RunCache::global().setDiskDir(env);
    }
}

void
printFigure(const FigureResult &fig, std::ostream &os)
{
    os << "=== " << fig.id << ": " << fig.title << " ===\n\n";
    fig.table.print(os);
    os << "\nshape checks:\n";
    for (const auto &c : fig.checks) {
        os << "  [" << (c.pass ? "PASS" : "FAIL") << "] " << c.what
           << "  (" << c.detail << ")\n";
    }
    os << (fig.allPass() ? "=> all shape checks passed\n"
                         : "=> SOME SHAPE CHECKS FAILED\n");
}

int
figureMain(FigureResult (*harness)(const FigureOptions &), int argc,
           char **argv)
{
    std::string metrics_out;
    std::string cache_dir;
    std::string trace_out;
    std::string trace_in;
    std::string protocol_flag;
    unsigned numa_nodes = 0;
    bool no_cache = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--jobs=", 0) == 0) {
            const long jobs = std::strtol(arg.c_str() + 7, nullptr, 10);
            if (jobs < 1)
                fatal("figureMain: bad flag '", arg,
                           "' (want --jobs=N with N >= 1)");
            sim::ThreadPool::setGlobalJobs(
                static_cast<unsigned>(jobs));
        } else if (arg.rfind("--metrics-out=", 0) == 0) {
            metrics_out = arg.substr(14);
            if (metrics_out.empty())
                fatal("figureMain: bad flag '", arg,
                           "' (want --metrics-out=PATH)");
        } else if (arg.rfind("--cache-dir=", 0) == 0) {
            cache_dir = arg.substr(12);
            if (cache_dir.empty())
                fatal("figureMain: bad flag '", arg,
                           "' (want --cache-dir=PATH)");
        } else if (arg.rfind("--trace-out=", 0) == 0) {
            trace_out = arg.substr(12);
            if (trace_out.empty())
                fatal("figureMain: bad flag '", arg,
                           "' (want --trace-out=DIR)");
        } else if (arg.rfind("--trace-in=", 0) == 0) {
            trace_in = arg.substr(11);
            if (trace_in.empty())
                fatal("figureMain: bad flag '", arg,
                           "' (want --trace-in=DIR)");
        } else if (arg.rfind("--protocol=", 0) == 0) {
            protocol_flag = arg.substr(11);
            sim::CoherenceProtocol p;
            if (!sim::parseProtocol(protocol_flag, p))
                fatal("figureMain: bad flag '", arg,
                      "' (want --protocol=snoop|directory)");
        } else if (arg.rfind("--numa-nodes=", 0) == 0) {
            const long nodes =
                std::strtol(arg.c_str() + 13, nullptr, 10);
            if (nodes < 1)
                fatal("figureMain: bad flag '", arg,
                      "' (want --numa-nodes=N with N >= 1)");
            numa_nodes = static_cast<unsigned>(nodes);
        } else if (arg == "--no-cache") {
            no_cache = true;
        } else if (arg == "--check") {
            check::setCheckingEnabled(true);
        } else {
            fatal("figureMain: unknown flag '", arg,
                       "' (supported: --jobs=N, --metrics-out=PATH, "
                       "--cache-dir=PATH, --no-cache, --check, "
                       "--trace-out=DIR, --trace-in=DIR, "
                       "--protocol=snoop|directory, --numa-nodes=N)");
        }
    }
    // A cached result was produced without the checkers watching;
    // checking is only meaningful for runs that actually execute.
    if (check::checkingEnabled())
        no_cache = true;
    configureRunCache(cache_dir, no_cache);
    configureTracingFromFlags(trace_out, trace_in);

    FigureOptions opt = FigureOptions::fromEnv();
    if (!protocol_flag.empty())
        sim::parseProtocol(protocol_flag, opt.protocol);
    if (numa_nodes != 0)
        opt.numaNodes = numa_nodes;
    const FigureResult fig = harness(opt);
    printFigure(fig, std::cout);
    if (!metrics_out.empty()) {
        std::ofstream os(metrics_out);
        if (!os)
            fatal("figureMain: cannot open '", metrics_out,
                       "' for writing");
        writeMetricsJson(os, fig.id, fig.metricsByPoint);
    }
    return fig.allPass() ? 0 : 1;
}

} // namespace middlesim::core
