#include "core/report.hh"

#include <cstdlib>
#include <iostream>
#include <string>

#include "sim/log.hh"
#include "sim/threadpool.hh"

namespace middlesim::core
{

void
printFigure(const FigureResult &fig, std::ostream &os)
{
    os << "=== " << fig.id << ": " << fig.title << " ===\n\n";
    fig.table.print(os);
    os << "\nshape checks:\n";
    for (const auto &c : fig.checks) {
        os << "  [" << (c.pass ? "PASS" : "FAIL") << "] " << c.what
           << "  (" << c.detail << ")\n";
    }
    os << (fig.allPass() ? "=> all shape checks passed\n"
                         : "=> SOME SHAPE CHECKS FAILED\n");
}

int
figureMain(FigureResult (*harness)(const FigureOptions &), int argc,
           char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--jobs=", 0) == 0) {
            const long jobs = std::strtol(arg.c_str() + 7, nullptr, 10);
            if (jobs < 1)
                fatal("figureMain: bad flag '", arg,
                           "' (want --jobs=N with N >= 1)");
            sim::ThreadPool::setGlobalJobs(
                static_cast<unsigned>(jobs));
        } else {
            fatal("figureMain: unknown flag '", arg,
                       "' (supported: --jobs=N)");
        }
    }

    const FigureOptions opt = FigureOptions::fromEnv();
    const FigureResult fig = harness(opt);
    printFigure(fig, std::cout);
    return fig.allPass() ? 0 : 1;
}

} // namespace middlesim::core
