#include "core/report.hh"

#include <iostream>

namespace middlesim::core
{

void
printFigure(const FigureResult &fig, std::ostream &os)
{
    os << "=== " << fig.id << ": " << fig.title << " ===\n\n";
    fig.table.print(os);
    os << "\nshape checks:\n";
    for (const auto &c : fig.checks) {
        os << "  [" << (c.pass ? "PASS" : "FAIL") << "] " << c.what
           << "  (" << c.detail << ")\n";
    }
    os << (fig.allPass() ? "=> all shape checks passed\n"
                         : "=> SOME SHAPE CHECKS FAILED\n");
}

int
figureMain(FigureResult (*harness)(const FigureOptions &))
{
    const FigureOptions opt = FigureOptions::fromEnv();
    const FigureResult fig = harness(opt);
    printFigure(fig, std::cout);
    return fig.allPass() ? 0 : 1;
}

} // namespace middlesim::core
