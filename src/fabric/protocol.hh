/**
 * @file
 * The `middlesim-fabric-v1` wire protocol.
 *
 * Coordinator and worker exchange length-prefixed JSON frames (see
 * sim::appendFrame / sim::FrameSplitter for the framing) over any
 * byte pipe — the local pipes of a spawned worker, or an ssh/socat
 * transport for a remote attach. Five frame types:
 *
 *   HELLO      both directions, first frame each way. Carries the
 *              protocol version and the fnv1a64 hash of the canonical
 *              work-queue ids; a mismatch on either side aborts the
 *              session before any work is leased, so two builds that
 *              would enumerate different (spec,seed) queues can never
 *              silently exchange indices.
 *   LEASE      coordinator -> worker: run item `index` under lease
 *              `epoch`. Carries the item's id hash as a per-item
 *              spec-key check on top of the queue hash.
 *   RESULT     worker -> coordinator: item finished (ok or error),
 *              echoing index+epoch, with an opaque hex payload (the
 *              worker's encoded MetricSnapshot delta). Results whose
 *              epoch is stale — the item was re-leased after the
 *              sender was declared dead — are dropped.
 *   HEARTBEAT  worker -> coordinator liveness while executing long
 *              points; silence beyond the timeout re-leases the
 *              worker's items.
 *   BYE        orderly shutdown in either direction.
 *
 * Simulation payloads (RunResult and friends) never travel in frames:
 * workers persist them into the shared content-addressed disk
 * RunCache, which is the artifact plane; frames carry only control
 * and merge-only metric deltas.
 */

#ifndef FABRIC_PROTOCOL_HH
#define FABRIC_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace middlesim::fabric
{

inline constexpr const char *protocolVersion = "middlesim-fabric-v1";

enum class FrameType
{
    Hello,
    Lease,
    Result,
    Heartbeat,
    Bye,
};

struct HelloFrame
{
    std::string protocol;
    /** "coordinator" or "worker". */
    std::string role;
    /** queueHashHex() of the sender's canonical work queue. */
    std::string queueHash;
    std::uint64_t items = 0;
    std::uint64_t pid = 0;
};

struct LeaseFrame
{
    std::uint64_t index = 0;
    std::uint64_t epoch = 0;
    /** idHashHex() of the leased item (per-item spec-key check). */
    std::string idHash;
};

struct ResultFrame
{
    std::uint64_t index = 0;
    std::uint64_t epoch = 0;
    bool ok = false;
    std::string error;
    double seconds = 0.0;
    /** Opaque payload bytes (hex on the wire), already decoded. */
    std::string payload;
};

struct HeartbeatFrame
{
    /** Item being executed, or -1 when idle. */
    std::int64_t busyIndex = -1;
};

struct ByeFrame
{
    std::uint64_t results = 0;
};

/** One decoded frame (active member selected by `type`). */
struct Frame
{
    FrameType type = FrameType::Bye;
    HelloFrame hello;
    LeaseFrame lease;
    ResultFrame result;
    HeartbeatFrame heartbeat;
    ByeFrame bye;
};

/** Encoders: JSON payload text for one frame (not yet length-framed). */
std::string encodeHello(const HelloFrame &f);
std::string encodeLease(const LeaseFrame &f);
std::string encodeResult(const ResultFrame &f);
std::string encodeHeartbeat(const HeartbeatFrame &f);
std::string encodeBye(const ByeFrame &f);

/**
 * Decode one frame payload. @return false and fill `error` (with a
 * byte offset for malformed JSON, or the offending field name for a
 * structurally wrong frame) on anything unrecognizable.
 */
bool decodeFrame(std::string_view payload, Frame &out,
                 std::string &error);

/** Lowercase hex of arbitrary bytes (opaque RESULT payloads). */
std::string toHex(std::string_view bytes);

/** @return false on odd length or a non-hex digit. */
bool fromHex(std::string_view hex, std::string &out);

/**
 * Content hash of a canonical work queue: fnv1a64 over every item id,
 * length-delimited so id boundaries cannot alias. Both sides derive
 * the queue independently and compare hashes at HELLO.
 */
std::string queueHashHex(const std::vector<std::string> &ids);

/** Content hash of one item id (per-LEASE check). */
std::string idHashHex(const std::string &id);

} // namespace middlesim::fabric

#endif // FABRIC_PROTOCOL_HH
