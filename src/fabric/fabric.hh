/**
 * @file
 * Shared types of the distributed experiment fabric.
 *
 * The fabric is generic over what a work item *is*: an item carries a
 * content-address id (hashed into the HELLO/LEASE checks) and a
 * closure that executes it and returns an opaque payload — for the
 * figure pipeline, an encoded MetricSnapshot delta; the simulation
 * results themselves are persisted into the shared disk RunCache by
 * the closure, never shipped through the protocol. Coordinator and
 * worker must derive byte-identical item id sequences from the same
 * inputs (environment + flags); the HELLO queue-hash check enforces
 * it.
 */

#ifndef FABRIC_FABRIC_HH
#define FABRIC_FABRIC_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace middlesim::fabric
{

/** One unit of leasable work. */
struct FabricItem
{
    /** Content address (stable across processes). */
    std::string id;
    /** Execute the item; returns the opaque RESULT payload. */
    std::function<std::string()> run;
};

struct FabricOptions
{
    /** Local worker processes to spawn. */
    unsigned workers = 1;
    /** argv of a worker process (typically self + --fabric-worker). */
    std::vector<std::string> workerArgv;
    /**
     * Alternative transport: spawn `/bin/sh -c <workerCommand>` per
     * worker instead of workerArgv — the command's stdin/stdout carry
     * the frames, so `ssh host middlesim_fabric worker ...` attaches
     * a remote worker.
     */
    std::string workerCommand;
    /** Leases pipelined per worker (hides frame turnaround). */
    unsigned maxOutstanding = 2;
    /** Requeues before an item is left to the inline fallback. */
    unsigned maxRequeues = 3;
    /** Worker heartbeat period. */
    unsigned heartbeatMs = 500;
    /** Coordinator-side silence timeout before a worker is declared
     *  dead and its leases requeued. */
    unsigned timeoutMs = 20000;

    /**
     * Apply MIDDLESIM_FABRIC_HEARTBEAT_MS / MIDDLESIM_FABRIC_TIMEOUT_MS
     * overrides (fault-injection tests shrink both).
     */
    void applyEnv();
};

struct FabricStats
{
    unsigned workersSpawned = 0;
    /** Accepted worker RESULTs. */
    std::uint64_t executed = 0;
    /** Items run by the coordinator's inline fallback. */
    std::uint64_t inlineRuns = 0;
    std::uint64_t requeues = 0;
    std::uint64_t staleResults = 0;
    std::uint64_t duplicateResults = 0;
    std::uint64_t workerDeaths = 0;
    std::uint64_t heartbeats = 0;
    /** Sum of worker-reported per-item seconds (cpu-time proxy). */
    double workerSeconds = 0.0;
};

} // namespace middlesim::fabric

#endif // FABRIC_FABRIC_HH
