/**
 * @file
 * The fabric coordinator: shard a canonical work queue over worker
 * processes, merge streamed results, survive worker loss.
 */

#ifndef FABRIC_COORDINATOR_HH
#define FABRIC_COORDINATOR_HH

#include "fabric/fabric.hh"

namespace middlesim::fabric
{

/**
 * Called once per *accepted* RESULT (worker or inline fallback) with
 * the item index and the opaque payload bytes, in completion order.
 */
using ResultSink =
    std::function<void(std::size_t, const std::string &)>;

/**
 * Run the coordinator side: spawn `opt.workers` worker processes
 * (opt.workerArgv, or `/bin/sh -c opt.workerCommand`), shard `items`
 * over them through the lease table, and merge RESULTs incrementally
 * through `sink`. Worker death (EOF, SIGKILL) or heartbeat silence
 * beyond opt.timeoutMs requeues that worker's leases under a bumped
 * epoch; stale-epoch RESULTs are dropped. If every worker is lost (or
 * an item exhausts its requeue budget), the remaining items run
 * inline in this process, so the campaign always completes with every
 * item executed exactly once from the sink's point of view.
 *
 * Completion is guaranteed; ordering is not — callers needing
 * deterministic output must render from the shared artifact store
 * (the disk RunCache) after this returns, exactly like single-process
 * run_all renders from its memo.
 */
FabricStats runCoordinator(const std::vector<FabricItem> &items,
                           const FabricOptions &opt,
                           const ResultSink &sink);

/** Absolute path of the running executable (for workerArgv). */
std::string selfExePath();

} // namespace middlesim::fabric

#endif // FABRIC_COORDINATOR_HH
