#include "fabric/coordinator.hh"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "fabric/lease.hh"
#include "fabric/protocol.hh"
#include "sim/log.hh"
#include "sim/serialize.hh"

namespace middlesim::fabric
{

namespace
{

using Clock = std::chrono::steady_clock;

bool
writeFull(int fd, const std::string &data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n =
            ::write(fd, data.data() + off, data.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

unsigned
envMsOr(const char *name, unsigned def)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return def;
    const long parsed = std::strtol(v, nullptr, 10);
    return parsed >= 1 ? static_cast<unsigned>(parsed) : def;
}

/** One spawned (or attached) worker process. */
struct WorkerProc
{
    int id = -1;
    pid_t pid = -1;
    /** Coordinator reads frames here (worker's stdout). */
    int rfd = -1;
    /** Coordinator writes frames here (worker's stdin). */
    int wfd = -1;
    sim::FrameSplitter splitter;
    Clock::time_point lastSeen;
    unsigned outstanding = 0;
    bool helloOk = false;
    bool alive = false;
    bool byeSent = false;
};

/** fork/exec a worker with both stdio legs piped to the coordinator. */
bool
spawnWorker(const FabricOptions &opt, int worker_id, WorkerProc &out)
{
    int to_worker[2];   // coordinator writes -> worker stdin
    int from_worker[2]; // worker stdout -> coordinator reads
    if (::pipe(to_worker) != 0)
        return false;
    if (::pipe(from_worker) != 0) {
        ::close(to_worker[0]);
        ::close(to_worker[1]);
        return false;
    }

    const pid_t pid = ::fork();
    if (pid < 0) {
        for (int fd : {to_worker[0], to_worker[1], from_worker[0],
                       from_worker[1]}) {
            ::close(fd);
        }
        return false;
    }
    if (pid == 0) {
        ::dup2(to_worker[0], STDIN_FILENO);
        ::dup2(from_worker[1], STDOUT_FILENO);
        for (int fd : {to_worker[0], to_worker[1], from_worker[0],
                       from_worker[1]}) {
            ::close(fd);
        }
        const std::string index = std::to_string(worker_id);
        ::setenv("MIDDLESIM_FABRIC_WORKER_INDEX", index.c_str(), 1);
        if (!opt.workerCommand.empty()) {
            ::execl("/bin/sh", "sh", "-c", opt.workerCommand.c_str(),
                    static_cast<char *>(nullptr));
        } else {
            std::vector<char *> argv;
            argv.reserve(opt.workerArgv.size() + 1);
            for (const std::string &arg : opt.workerArgv)
                argv.push_back(const_cast<char *>(arg.c_str()));
            argv.push_back(nullptr);
            ::execv(argv[0], argv.data());
        }
        std::perror("fabric: exec worker");
        ::_exit(127);
    }

    ::close(to_worker[0]);
    ::close(from_worker[1]);
    ::fcntl(from_worker[0], F_SETFL,
            ::fcntl(from_worker[0], F_GETFL) | O_NONBLOCK);

    out.id = worker_id;
    out.pid = pid;
    out.rfd = from_worker[0];
    out.wfd = to_worker[1];
    out.lastSeen = Clock::now();
    out.alive = true;
    return true;
}

class Coordinator
{
  public:
    Coordinator(const std::vector<FabricItem> &items,
                const FabricOptions &opt, const ResultSink &sink)
        : items_(items), opt_(opt), sink_(sink),
          table_(items.size(), opt.maxRequeues)
    {
        ids_.reserve(items.size());
        for (const FabricItem &item : items)
            ids_.push_back(item.id);
        queueHash_ = queueHashHex(ids_);
    }

    FabricStats
    run()
    {
        ::signal(SIGPIPE, SIG_IGN);
        spawnAll();

        while (!table_.allDone()) {
            dispatchLeases();
            if (aliveCount() == 0)
                break; // inline fallback below
            if (!table_.hasLeasable() && totalOutstanding() == 0)
                break; // only over-budget items remain: run inline
            pollOnce(100);
            checkTimeouts();
        }

        shutdownWorkers();
        runInlineFallback();
        stats_.requeues = table_.requeues();
        stats_.staleResults = table_.staleResults();
        stats_.duplicateResults = table_.duplicateResults();
        return stats_;
    }

  private:
    unsigned
    aliveCount() const
    {
        unsigned n = 0;
        for (const WorkerProc &w : workers_)
            n += w.alive ? 1 : 0;
        return n;
    }

    unsigned
    totalOutstanding() const
    {
        unsigned n = 0;
        for (const WorkerProc &w : workers_)
            n += w.alive ? w.outstanding : 0;
        return n;
    }

    void
    spawnAll()
    {
        workers_.resize(opt_.workers);
        for (unsigned i = 0; i < opt_.workers; ++i) {
            WorkerProc &w = workers_[i];
            if (!spawnWorker(opt_, static_cast<int>(i), w)) {
                warn("fabric: cannot spawn worker ", i, ": ",
                     std::strerror(errno));
                continue;
            }
            ++stats_.workersSpawned;
            HelloFrame hello;
            hello.protocol = protocolVersion;
            hello.role = "coordinator";
            hello.queueHash = queueHash_;
            hello.items = items_.size();
            hello.pid = static_cast<std::uint64_t>(::getpid());
            if (!send(w, encodeHello(hello)))
                markDead(w, "hello write failed");
        }
    }

    bool
    send(WorkerProc &w, const std::string &payload)
    {
        std::string framed;
        sim::appendFrame(framed, payload);
        return writeFull(w.wfd, framed);
    }

    void
    dispatchLeases()
    {
        for (WorkerProc &w : workers_) {
            if (!w.alive || !w.helloOk || w.byeSent)
                continue;
            while (w.outstanding < opt_.maxOutstanding) {
                const auto lease = table_.acquire(w.id);
                if (!lease)
                    return; // queue drained (for now)
                LeaseFrame frame;
                frame.index = lease->index;
                frame.epoch = lease->epoch;
                frame.idHash = idHashHex(ids_[lease->index]);
                if (!send(w, encodeLease(frame))) {
                    markDead(w, "lease write failed");
                    break;
                }
                ++w.outstanding;
            }
        }
    }

    void
    pollOnce(int timeout_ms)
    {
        std::vector<pollfd> fds;
        std::vector<WorkerProc *> owners;
        for (WorkerProc &w : workers_) {
            if (!w.alive)
                continue;
            fds.push_back({w.rfd, POLLIN, 0});
            owners.push_back(&w);
        }
        if (fds.empty())
            return;
        const int n = ::poll(fds.data(),
                             static_cast<nfds_t>(fds.size()),
                             timeout_ms);
        if (n <= 0)
            return;
        for (std::size_t i = 0; i < fds.size(); ++i) {
            if (fds[i].revents == 0)
                continue;
            drainWorker(*owners[i]);
        }
    }

    void
    drainWorker(WorkerProc &w)
    {
        char buf[65536];
        bool eof = false;
        while (true) {
            const ssize_t n = ::read(w.rfd, buf, sizeof(buf));
            if (n > 0) {
                w.splitter.feed(buf, static_cast<std::size_t>(n));
                continue;
            }
            if (n == 0) {
                eof = true;
                break;
            }
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                break;
            eof = true;
            break;
        }

        std::string frame;
        while (w.alive && w.splitter.next(frame))
            handleFrame(w, frame);
        if (!w.alive)
            return;
        if (w.splitter.failed()) {
            markDead(w, "frame stream corrupt: " +
                            w.splitter.error());
            return;
        }
        if (eof) {
            if (w.byeSent) {
                retire(w); // orderly shutdown, not a death
            } else {
                markDead(w, "EOF (worker exited or was killed)");
            }
        }
    }

    void
    handleFrame(WorkerProc &w, const std::string &payload)
    {
        w.lastSeen = Clock::now();
        Frame f;
        std::string error;
        if (!decodeFrame(payload, f, error)) {
            markDead(w, error);
            return;
        }
        switch (f.type) {
        case FrameType::Hello:
            if (f.hello.protocol != protocolVersion ||
                f.hello.queueHash != queueHash_ ||
                f.hello.items != items_.size()) {
                markDead(w,
                         "hello mismatch (protocol '" +
                             f.hello.protocol + "', queue hash " +
                             f.hello.queueHash + " vs ours " +
                             queueHash_ + ")");
                return;
            }
            w.helloOk = true;
            break;
        case FrameType::Result:
            handleResult(w, f.result);
            break;
        case FrameType::Heartbeat:
            ++stats_.heartbeats;
            break;
        case FrameType::Bye:
            // Worker is about to exit; EOF follows.
            break;
        case FrameType::Lease:
            markDead(w, "worker sent a LEASE frame");
            break;
        }
    }

    void
    handleResult(WorkerProc &w, const ResultFrame &r)
    {
        if (r.index >= items_.size()) {
            markDead(w, "result index out of range");
            return;
        }
        if (w.outstanding > 0)
            --w.outstanding;
        if (!r.ok) {
            // The item failed but the worker survived: requeue just
            // this lease (budgeted, like a death-requeue).
            warn("fabric: item ", r.index, " failed on worker ",
                 w.id, ": ", r.error);
            table_.fail(r.index, r.epoch);
            return;
        }
        switch (table_.complete(r.index, r.epoch)) {
        case LeaseTable::Outcome::Accepted:
            ++stats_.executed;
            stats_.workerSeconds += r.seconds;
            if (sink_)
                sink_(r.index, r.payload);
            break;
        case LeaseTable::Outcome::Stale:
        case LeaseTable::Outcome::Duplicate:
            break; // counted by the table; payload discarded
        }
    }

    void
    checkTimeouts()
    {
        const auto now = Clock::now();
        for (WorkerProc &w : workers_) {
            if (!w.alive)
                continue;
            const auto silence =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    now - w.lastSeen)
                    .count();
            if (silence > static_cast<long long>(opt_.timeoutMs)) {
                markDead(w, "no heartbeat for " +
                                std::to_string(silence) + " ms");
            }
        }
    }

    /** Orderly retirement after BYE at end of queue. */
    void
    retire(WorkerProc &w)
    {
        w.alive = false;
        ::close(w.rfd);
        ::close(w.wfd);
        int status = 0;
        ::waitpid(w.pid, &status, 0);
    }

    void
    markDead(WorkerProc &w, const std::string &why)
    {
        if (!w.alive)
            return;
        warn("fabric: worker ", w.id, " (pid ", w.pid,
             ") lost: ", why);
        w.alive = false;
        ::close(w.rfd);
        ::close(w.wfd);
        ::kill(w.pid, SIGKILL);
        int status = 0;
        ::waitpid(w.pid, &status, 0);
        ++stats_.workerDeaths;
        w.outstanding = 0;
        const auto requeued = table_.releaseWorker(w.id);
        if (!requeued.empty()) {
            warn("fabric: requeued ", requeued.size(),
                 " leased item(s) from worker ", w.id);
        }
    }

    void
    shutdownWorkers()
    {
        ByeFrame bye;
        bye.results = table_.doneCount();
        for (WorkerProc &w : workers_) {
            if (!w.alive)
                continue;
            w.byeSent = true;
            send(w, encodeBye(bye));
        }
        // Give workers a moment to acknowledge and exit; anything
        // still attached after the grace period is killed.
        const auto deadline =
            Clock::now() + std::chrono::milliseconds(2000);
        while (aliveCount() > 0 && Clock::now() < deadline)
            pollOnce(50);
        for (WorkerProc &w : workers_) {
            if (w.alive)
                markDead(w, "did not exit after BYE");
        }
    }

    void
    runInlineFallback()
    {
        const auto remaining = table_.unfinished();
        if (remaining.empty())
            return;
        warn("fabric: running ", remaining.size(),
             " unfinished item(s) inline in the coordinator");
        for (std::size_t index : remaining) {
            const std::string payload = items_[index].run();
            ++stats_.inlineRuns;
            if (sink_)
                sink_(index, payload);
        }
    }

    const std::vector<FabricItem> &items_;
    const FabricOptions &opt_;
    const ResultSink &sink_;
    LeaseTable table_;
    std::vector<std::string> ids_;
    std::string queueHash_;
    std::vector<WorkerProc> workers_;
    FabricStats stats_;
};

} // namespace

void
FabricOptions::applyEnv()
{
    heartbeatMs =
        envMsOr("MIDDLESIM_FABRIC_HEARTBEAT_MS", heartbeatMs);
    timeoutMs = envMsOr("MIDDLESIM_FABRIC_TIMEOUT_MS", timeoutMs);
}

FabricStats
runCoordinator(const std::vector<FabricItem> &items,
               const FabricOptions &opt, const ResultSink &sink)
{
    Coordinator coordinator(items, opt, sink);
    return coordinator.run();
}

std::string
selfExePath()
{
    char buf[4096];
    const ssize_t n =
        ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0)
        return {};
    buf[n] = '\0';
    return std::string(buf);
}

} // namespace middlesim::fabric
