#include "fabric/worker.hh"

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>

#include <fcntl.h>
#include <unistd.h>

#include "fabric/protocol.hh"
#include "sim/serialize.hh"

namespace middlesim::fabric
{

namespace
{

/** Write all of `data` to `fd`, retrying on EINTR/partial writes. */
bool
writeFull(int fd, const std::string &data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n =
            ::write(fd, data.data() + off, data.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

/** Frame writer shared by the lease loop and the heartbeat thread. */
class FrameWriter
{
  public:
    explicit FrameWriter(int fd) : fd_(fd) {}

    bool
    send(const std::string &payload)
    {
        std::string framed;
        sim::appendFrame(framed, payload);
        std::lock_guard<std::mutex> lock(mutex_);
        return writeFull(fd_, framed);
    }

  private:
    int fd_;
    std::mutex mutex_;
};

/**
 * Fault-injection hook for the kill-recovery tests:
 * MIDDLESIM_FABRIC_KILL_AFTER="<worker>:<n>" makes worker number
 * <worker> (its MIDDLESIM_FABRIC_WORKER_INDEX) raise SIGKILL right
 * after sending its <n>th RESULT — a deterministic mid-run crash.
 */
long
killAfterResults()
{
    const char *spec = std::getenv("MIDDLESIM_FABRIC_KILL_AFTER");
    const char *index = std::getenv("MIDDLESIM_FABRIC_WORKER_INDEX");
    if (!spec || !index)
        return -1;
    const char *colon = std::strchr(spec, ':');
    if (!colon)
        return -1;
    if (std::strtol(spec, nullptr, 10) !=
        std::strtol(index, nullptr, 10)) {
        return -1;
    }
    return std::strtol(colon + 1, nullptr, 10);
}

} // namespace

int
runWorker(const std::vector<FabricItem> &items, unsigned heartbeat_ms)
{
    ::signal(SIGPIPE, SIG_IGN);

    // The frame stream owns the original stdout; simulation code that
    // printf()s lands in /dev/null instead of the protocol.
    const int proto_out = ::dup(STDOUT_FILENO);
    const int devnull = ::open("/dev/null", O_WRONLY);
    if (proto_out < 0 || devnull < 0 ||
        ::dup2(devnull, STDOUT_FILENO) < 0) {
        std::fprintf(stderr,
                     "fabric worker: cannot set up stdio: %s\n",
                     std::strerror(errno));
        return 1;
    }
    ::close(devnull);

    FrameWriter out(proto_out);

    std::vector<std::string> ids;
    ids.reserve(items.size());
    for (const FabricItem &item : items)
        ids.push_back(item.id);
    const std::string queue_hash = queueHashHex(ids);

    sim::FrameSplitter splitter;
    std::string frame;
    auto read_frame = [&](std::string &payload) -> int {
        // 1 = frame, 0 = EOF at a boundary, -1 = stream error.
        while (!splitter.next(payload)) {
            if (splitter.failed())
                return -1;
            char buf[65536];
            const ssize_t n =
                ::read(STDIN_FILENO, buf, sizeof(buf));
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                return -1;
            }
            if (n == 0)
                return splitter.finish() ? 0 : -1;
            splitter.feed(buf, static_cast<std::size_t>(n));
        }
        return 1;
    };
    auto stream_error = [&](const char *when) {
        std::fprintf(stderr, "fabric worker: %s: %s\n", when,
                     splitter.failed() ? splitter.error().c_str()
                                       : std::strerror(errno));
        return 1;
    };

    // The coordinator speaks first; both sides verify.
    if (read_frame(frame) != 1)
        return stream_error("reading coordinator hello");
    Frame hello;
    std::string error;
    if (!decodeFrame(frame, hello, error) ||
        hello.type != FrameType::Hello) {
        std::fprintf(stderr, "fabric worker: bad hello: %s\n",
                     error.c_str());
        return 1;
    }
    if (hello.hello.protocol != protocolVersion) {
        std::fprintf(stderr,
                     "fabric worker: protocol mismatch: coordinator "
                     "speaks '%s', this build speaks '%s'\n",
                     hello.hello.protocol.c_str(), protocolVersion);
        return 1;
    }
    if (hello.hello.queueHash != queue_hash ||
        hello.hello.items != items.size()) {
        std::fprintf(
            stderr,
            "fabric worker: work-queue mismatch: coordinator has %llu "
            "items hash %s, this worker derived %zu items hash %s "
            "(differing build, options, or environment)\n",
            static_cast<unsigned long long>(hello.hello.items),
            hello.hello.queueHash.c_str(), items.size(),
            queue_hash.c_str());
        return 1;
    }

    HelloFrame reply;
    reply.protocol = protocolVersion;
    reply.role = "worker";
    reply.queueHash = queue_hash;
    reply.items = items.size();
    reply.pid = static_cast<std::uint64_t>(::getpid());
    if (!out.send(encodeHello(reply)))
        return 1;

    // Liveness while a long point executes: heartbeat until shutdown.
    std::mutex hb_mutex;
    std::condition_variable hb_cv;
    bool hb_stop = false;
    std::int64_t busy_index = -1;
    std::thread heartbeat([&] {
        std::unique_lock<std::mutex> lock(hb_mutex);
        while (!hb_stop) {
            hb_cv.wait_for(lock,
                           std::chrono::milliseconds(heartbeat_ms));
            if (hb_stop)
                break;
            HeartbeatFrame hb;
            hb.busyIndex = busy_index;
            out.send(encodeHeartbeat(hb));
        }
    });
    auto stop_heartbeat = [&] {
        {
            std::lock_guard<std::mutex> lock(hb_mutex);
            hb_stop = true;
        }
        hb_cv.notify_all();
        heartbeat.join();
    };

    const long kill_after = killAfterResults();
    std::uint64_t results = 0;
    int status = 0;
    while (true) {
        const int got = read_frame(frame);
        if (got == 0)
            break; // coordinator went away; orderly enough
        if (got < 0) {
            status = stream_error("reading frame");
            break;
        }
        Frame f;
        if (!decodeFrame(frame, f, error)) {
            std::fprintf(stderr, "fabric worker: %s\n",
                         error.c_str());
            status = 1;
            break;
        }
        if (f.type == FrameType::Bye) {
            ByeFrame bye;
            bye.results = results;
            out.send(encodeBye(bye));
            break;
        }
        if (f.type != FrameType::Lease)
            continue; // heartbeats etc. are ignorable here
        const std::uint64_t index = f.lease.index;
        if (index >= items.size() ||
            f.lease.idHash != idHashHex(items[index].id)) {
            std::fprintf(stderr,
                         "fabric worker: lease for item %llu fails "
                         "the id-hash check; queues diverged\n",
                         static_cast<unsigned long long>(index));
            status = 1;
            break;
        }

        {
            std::lock_guard<std::mutex> lock(hb_mutex);
            busy_index = static_cast<std::int64_t>(index);
        }
        ResultFrame result;
        result.index = index;
        result.epoch = f.lease.epoch;
        const auto t0 = std::chrono::steady_clock::now();
        try {
            result.payload = items[index].run();
            result.ok = true;
        } catch (const std::exception &e) {
            result.ok = false;
            result.error = e.what();
        } catch (...) {
            result.ok = false;
            result.error = "unknown exception";
        }
        result.seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        {
            std::lock_guard<std::mutex> lock(hb_mutex);
            busy_index = -1;
        }
        if (!out.send(encodeResult(result)))
            break;
        ++results;
        if (kill_after >= 0 &&
            results == static_cast<std::uint64_t>(kill_after)) {
            ::raise(SIGKILL);
        }
    }

    stop_heartbeat();
    ::close(proto_out);
    return status;
}

} // namespace middlesim::fabric
