#include "fabric/protocol.hh"

#include "fabric/json.hh"
#include "sim/serialize.hh"

namespace middlesim::fabric
{

namespace
{

JsonValue
jstr(std::string s)
{
    JsonValue v;
    v.kind = JsonValue::Kind::String;
    v.text = std::move(s);
    return v;
}

JsonValue
jnum(double n)
{
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    v.number = n;
    return v;
}

JsonValue
jbool(bool b)
{
    JsonValue v;
    v.kind = JsonValue::Kind::Bool;
    v.boolean = b;
    return v;
}

JsonValue
object()
{
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    return v;
}

bool
wrong(std::string &error, const std::string &what)
{
    error = "frame: " + what;
    return false;
}

} // namespace

std::string
encodeHello(const HelloFrame &f)
{
    JsonValue v = object();
    v.members.emplace_back("type", jstr("hello"));
    v.members.emplace_back("protocol", jstr(f.protocol));
    v.members.emplace_back("role", jstr(f.role));
    v.members.emplace_back("queue_hash", jstr(f.queueHash));
    v.members.emplace_back("items",
                           jnum(static_cast<double>(f.items)));
    v.members.emplace_back("pid", jnum(static_cast<double>(f.pid)));
    return writeJson(v);
}

std::string
encodeLease(const LeaseFrame &f)
{
    JsonValue v = object();
    v.members.emplace_back("type", jstr("lease"));
    v.members.emplace_back("index",
                           jnum(static_cast<double>(f.index)));
    v.members.emplace_back("epoch",
                           jnum(static_cast<double>(f.epoch)));
    v.members.emplace_back("id_hash", jstr(f.idHash));
    return writeJson(v);
}

std::string
encodeResult(const ResultFrame &f)
{
    JsonValue v = object();
    v.members.emplace_back("type", jstr("result"));
    v.members.emplace_back("index",
                           jnum(static_cast<double>(f.index)));
    v.members.emplace_back("epoch",
                           jnum(static_cast<double>(f.epoch)));
    v.members.emplace_back("ok", jbool(f.ok));
    if (!f.error.empty())
        v.members.emplace_back("error", jstr(f.error));
    v.members.emplace_back("seconds", jnum(f.seconds));
    v.members.emplace_back("snap", jstr(toHex(f.payload)));
    return writeJson(v);
}

std::string
encodeHeartbeat(const HeartbeatFrame &f)
{
    JsonValue v = object();
    v.members.emplace_back("type", jstr("heartbeat"));
    v.members.emplace_back(
        "busy", jnum(static_cast<double>(f.busyIndex)));
    return writeJson(v);
}

std::string
encodeBye(const ByeFrame &f)
{
    JsonValue v = object();
    v.members.emplace_back("type", jstr("bye"));
    v.members.emplace_back("results",
                           jnum(static_cast<double>(f.results)));
    return writeJson(v);
}

bool
decodeFrame(std::string_view payload, Frame &out, std::string &error)
{
    JsonValue doc;
    if (!parseJson(payload, doc, error))
        return false;
    if (doc.kind != JsonValue::Kind::Object)
        return wrong(error, "payload is not a JSON object");

    const std::string type = doc.strOr("type", "");
    out = Frame{};
    if (type == "hello") {
        out.type = FrameType::Hello;
        out.hello.protocol = doc.strOr("protocol", "");
        out.hello.role = doc.strOr("role", "");
        out.hello.queueHash = doc.strOr("queue_hash", "");
        out.hello.items = doc.u64Or("items", 0);
        out.hello.pid = doc.u64Or("pid", 0);
        if (out.hello.protocol.empty())
            return wrong(error, "hello missing 'protocol'");
        return true;
    }
    if (type == "lease") {
        out.type = FrameType::Lease;
        if (!doc.find("index") || !doc.find("epoch"))
            return wrong(error, "lease missing 'index'/'epoch'");
        out.lease.index = doc.u64Or("index", 0);
        out.lease.epoch = doc.u64Or("epoch", 0);
        out.lease.idHash = doc.strOr("id_hash", "");
        return true;
    }
    if (type == "result") {
        out.type = FrameType::Result;
        if (!doc.find("index") || !doc.find("epoch"))
            return wrong(error, "result missing 'index'/'epoch'");
        out.result.index = doc.u64Or("index", 0);
        out.result.epoch = doc.u64Or("epoch", 0);
        out.result.ok = doc.boolOr("ok", false);
        out.result.error = doc.strOr("error", "");
        out.result.seconds = doc.numOr("seconds", 0.0);
        if (!fromHex(doc.strOr("snap", ""), out.result.payload))
            return wrong(error, "result 'snap' is not valid hex");
        return true;
    }
    if (type == "heartbeat") {
        out.type = FrameType::Heartbeat;
        out.heartbeat.busyIndex =
            static_cast<std::int64_t>(doc.numOr("busy", -1.0));
        return true;
    }
    if (type == "bye") {
        out.type = FrameType::Bye;
        out.bye.results = doc.u64Or("results", 0);
        return true;
    }
    return wrong(error, "unknown frame type '" + type + "'");
}

std::string
toHex(std::string_view bytes)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(bytes.size() * 2);
    for (char c : bytes) {
        const auto b = static_cast<std::uint8_t>(c);
        out.push_back(digits[b >> 4]);
        out.push_back(digits[b & 0xf]);
    }
    return out;
}

bool
fromHex(std::string_view hex, std::string &out)
{
    out.clear();
    if (hex.size() % 2 != 0)
        return false;
    out.reserve(hex.size() / 2);
    auto nibble = [](char c, std::uint8_t &v) {
        if (c >= '0' && c <= '9')
            v = static_cast<std::uint8_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            v = static_cast<std::uint8_t>(c - 'a' + 10);
        else
            return false;
        return true;
    };
    for (std::size_t i = 0; i < hex.size(); i += 2) {
        std::uint8_t hi, lo;
        if (!nibble(hex[i], hi) || !nibble(hex[i + 1], lo))
            return false;
        out.push_back(static_cast<char>((hi << 4) | lo));
    }
    return true;
}

std::string
queueHashHex(const std::vector<std::string> &ids)
{
    std::uint64_t h = sim::fnv1a64Init;
    for (const std::string &id : ids) {
        // Length-delimit so ("ab","c") never hashes like ("a","bc").
        sim::ByteWriter w;
        w.u64(id.size());
        h = sim::fnv1a64Step(h, w.data());
        h = sim::fnv1a64Step(h, id);
    }
    return sim::hashHex(h);
}

std::string
idHashHex(const std::string &id)
{
    return sim::hashHex(sim::fnv1a64(id));
}

} // namespace middlesim::fabric
