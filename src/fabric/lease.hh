/**
 * @file
 * Lease table: the sharded work-queue state machine of the fabric.
 *
 * Every item of the canonical deduplicated work queue is Pending,
 * Leased, or Done. Leasing an item stamps it with a fresh *epoch*;
 * requeuing (worker death, heartbeat timeout) bumps the epoch, so a
 * RESULT from a zombie's stale lease is recognizably late and is
 * dropped — the same item completed under a newer epoch is the only
 * accepted outcome. Items that keep killing workers stop being leased
 * after `maxRequeues` and are left for the coordinator's inline
 * fallback, so one poisoned point can never wedge the whole campaign.
 *
 * The table is single-threaded (the coordinator event loop owns it);
 * it carries no I/O so every transition is unit-testable.
 */

#ifndef FABRIC_LEASE_HH
#define FABRIC_LEASE_HH

#include <cstdint>
#include <optional>
#include <vector>

namespace middlesim::fabric
{

class LeaseTable
{
  public:
    explicit LeaseTable(std::size_t items, unsigned max_requeues = 3);

    struct Lease
    {
        std::size_t index = 0;
        std::uint64_t epoch = 0;
    };

    enum class Outcome
    {
        /** First completion under the current epoch. */
        Accepted,
        /** Epoch mismatch: the lease was requeued after the sender
         *  was declared dead; the result is dropped. */
        Stale,
        /** Item already completed (double delivery). */
        Duplicate,
    };

    /**
     * Lease the next pending item to `worker` (lowest index first).
     * @return nullopt when nothing leasable remains (done, leased
     * elsewhere, or over the requeue cap).
     */
    std::optional<Lease> acquire(int worker);

    /** A RESULT for (index, epoch) arrived. */
    Outcome complete(std::size_t index, std::uint64_t epoch);

    /**
     * A live worker reported the item failed (ok=false RESULT):
     * requeue it under a bumped epoch, against the same budget as a
     * death-requeue. Stale failures are ignored.
     */
    void fail(std::size_t index, std::uint64_t epoch);

    /**
     * `worker` died or timed out: every item it holds goes back to
     * Pending under a bumped epoch. @return the requeued indices.
     */
    std::vector<std::size_t> releaseWorker(int worker);

    bool allDone() const { return done_ == items_.size(); }
    std::size_t doneCount() const { return done_; }
    std::size_t size() const { return items_.size(); }

    /** True when acquire() can still hand out work. */
    bool hasLeasable() const;

    /** Everything not Done (leased-to-the-dead included), for the
     *  inline fallback. Caller must only use this once no workers
     *  remain. */
    std::vector<std::size_t> unfinished() const;

    std::uint64_t requeues() const { return requeues_; }
    std::uint64_t staleResults() const { return stale_; }
    std::uint64_t duplicateResults() const { return duplicates_; }

  private:
    enum class State
    {
        Pending,
        Leased,
        Done,
    };

    struct Item
    {
        State state = State::Pending;
        std::uint64_t epoch = 0;
        int worker = -1;
        unsigned requeues = 0;
    };

    std::vector<Item> items_;
    unsigned maxRequeues_;
    std::size_t done_ = 0;
    /** Scan start hint: everything below is never Pending. */
    std::size_t scan_ = 0;
    std::uint64_t requeues_ = 0;
    std::uint64_t stale_ = 0;
    std::uint64_t duplicates_ = 0;
};

} // namespace middlesim::fabric

#endif // FABRIC_LEASE_HH
