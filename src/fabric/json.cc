#include "fabric/json.hh"

#include <cmath>
#include <cstdlib>

#include "sim/metrics.hh"

namespace middlesim::fabric
{

namespace
{

/** Hostile-input backstop: deeper nesting than any legal frame. */
constexpr int kMaxDepth = 64;

class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    bool
    parse(JsonValue &out, std::string &error)
    {
        skipWs();
        if (!value(out, 0)) {
            error = error_;
            return false;
        }
        skipWs();
        if (pos_ != text_.size()) {
            error = "json: trailing garbage at byte " +
                    std::to_string(pos_);
            return false;
        }
        return true;
    }

  private:
    bool
    fail(const std::string &what)
    {
        if (error_.empty()) {
            error_ = "json: " + what + " at byte " +
                     std::to_string(pos_);
        }
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return fail("unrecognized token");
        pos_ += word.size();
        return true;
    }

    bool
    hex4(std::uint32_t &out)
    {
        out = 0;
        for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size())
                return fail("truncated \\u escape");
            const char c = text_[pos_];
            std::uint32_t d;
            if (c >= '0' && c <= '9')
                d = static_cast<std::uint32_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                d = static_cast<std::uint32_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                d = static_cast<std::uint32_t>(c - 'A' + 10);
            else
                return fail("bad \\u escape digit");
            out = (out << 4) | d;
            ++pos_;
        }
        return true;
    }

    bool
    string(std::string &out)
    {
        // Caller consumed the opening quote.
        out.clear();
        while (true) {
            if (pos_ >= text_.size())
                return fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20) {
                --pos_;
                return fail("raw control character in string");
            }
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                return fail("truncated escape");
            const char e = text_[pos_++];
            switch (e) {
            case '"': out.push_back('"'); break;
            case '\\': out.push_back('\\'); break;
            case '/': out.push_back('/'); break;
            case 'b': out.push_back('\b'); break;
            case 'f': out.push_back('\f'); break;
            case 'n': out.push_back('\n'); break;
            case 'r': out.push_back('\r'); break;
            case 't': out.push_back('\t'); break;
            case 'u': {
                std::uint32_t cp;
                if (!hex4(cp))
                    return false;
                if (cp >= 0xd800 && cp <= 0xdfff) {
                    // The protocol never emits astral-plane text;
                    // reject surrogates instead of pairing them.
                    return fail("surrogate \\u escape unsupported");
                }
                if (cp < 0x80) {
                    out.push_back(static_cast<char>(cp));
                } else if (cp < 0x800) {
                    out.push_back(
                        static_cast<char>(0xc0 | (cp >> 6)));
                    out.push_back(
                        static_cast<char>(0x80 | (cp & 0x3f)));
                } else {
                    out.push_back(
                        static_cast<char>(0xe0 | (cp >> 12)));
                    out.push_back(static_cast<char>(
                        0x80 | ((cp >> 6) & 0x3f)));
                    out.push_back(
                        static_cast<char>(0x80 | (cp & 0x3f)));
                }
                break;
            }
            default:
                pos_ -= 1;
                return fail("unknown escape");
            }
        }
    }

    bool
    number(double &out)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        auto digits = [&] {
            const std::size_t before = pos_;
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9') {
                ++pos_;
            }
            return pos_ > before;
        };
        const std::size_t int_start = pos_;
        if (!digits())
            return fail("malformed number");
        if (pos_ - int_start > 1 && text_[int_start] == '0') {
            pos_ = int_start;
            return fail("leading zero in number");
        }
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (!digits())
                return fail("malformed number fraction");
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-')) {
                ++pos_;
            }
            if (!digits())
                return fail("malformed number exponent");
        }
        const std::string token(text_.substr(start, pos_ - start));
        out = std::strtod(token.c_str(), nullptr);
        if (!std::isfinite(out)) {
            pos_ = start;
            return fail("non-finite number");
        }
        return true;
    }

    bool
    value(JsonValue &out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting deeper than 64");
        if (pos_ >= text_.size())
            return fail("unexpected end of document");
        const char c = text_[pos_];
        switch (c) {
        case '{': {
            ++pos_;
            out.kind = JsonValue::Kind::Object;
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            while (true) {
                skipWs();
                if (pos_ >= text_.size() || text_[pos_] != '"')
                    return fail("expected object key");
                ++pos_;
                std::string key;
                if (!string(key))
                    return false;
                skipWs();
                if (pos_ >= text_.size() || text_[pos_] != ':')
                    return fail("expected ':'");
                ++pos_;
                skipWs();
                JsonValue member;
                if (!value(member, depth + 1))
                    return false;
                out.members.emplace_back(std::move(key),
                                         std::move(member));
                skipWs();
                if (pos_ >= text_.size())
                    return fail("unterminated object");
                if (text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (text_[pos_] == '}') {
                    ++pos_;
                    return true;
                }
                return fail("expected ',' or '}'");
            }
        }
        case '[': {
            ++pos_;
            out.kind = JsonValue::Kind::Array;
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            while (true) {
                skipWs();
                JsonValue element;
                if (!value(element, depth + 1))
                    return false;
                out.elements.push_back(std::move(element));
                skipWs();
                if (pos_ >= text_.size())
                    return fail("unterminated array");
                if (text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (text_[pos_] == ']') {
                    ++pos_;
                    return true;
                }
                return fail("expected ',' or ']'");
            }
        }
        case '"':
            ++pos_;
            out.kind = JsonValue::Kind::String;
            return string(out.text);
        case 't':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return literal("true");
        case 'f':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return literal("false");
        case 'n':
            out.kind = JsonValue::Kind::Null;
            return literal("null");
        default:
            out.kind = JsonValue::Kind::Number;
            return number(out.number);
        }
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    std::string error_;
};

void
writeValue(const JsonValue &v, std::string &out)
{
    switch (v.kind) {
    case JsonValue::Kind::Null:
        out += "null";
        break;
    case JsonValue::Kind::Bool:
        out += v.boolean ? "true" : "false";
        break;
    case JsonValue::Kind::Number:
        out += sim::formatDouble(v.number);
        break;
    case JsonValue::Kind::String:
        out += '"';
        out += sim::jsonEscape(v.text);
        out += '"';
        break;
    case JsonValue::Kind::Object: {
        out += '{';
        bool first = true;
        for (const auto &[key, member] : v.members) {
            if (!first)
                out += ',';
            first = false;
            out += '"';
            out += sim::jsonEscape(key);
            out += "\":";
            writeValue(member, out);
        }
        out += '}';
        break;
    }
    case JsonValue::Kind::Array: {
        out += '[';
        bool first = true;
        for (const JsonValue &e : v.elements) {
            if (!first)
                out += ',';
            first = false;
            writeValue(e, out);
        }
        out += ']';
        break;
    }
    }
}

} // namespace

const JsonValue *
JsonValue::find(std::string_view key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[name, member] : members) {
        if (name == key)
            return &member;
    }
    return nullptr;
}

std::string
JsonValue::strOr(std::string_view key, std::string def) const
{
    const JsonValue *v = find(key);
    return v && v->kind == Kind::String ? v->text : std::move(def);
}

double
JsonValue::numOr(std::string_view key, double def) const
{
    const JsonValue *v = find(key);
    return v && v->kind == Kind::Number ? v->number : def;
}

std::uint64_t
JsonValue::u64Or(std::string_view key, std::uint64_t def) const
{
    const JsonValue *v = find(key);
    if (!v || v->kind != Kind::Number || v->number < 0)
        return def;
    return static_cast<std::uint64_t>(v->number);
}

bool
JsonValue::boolOr(std::string_view key, bool def) const
{
    const JsonValue *v = find(key);
    return v && v->kind == Kind::Bool ? v->boolean : def;
}

bool
parseJson(std::string_view text, JsonValue &out, std::string &error)
{
    out = JsonValue{};
    return Parser(text).parse(out, error);
}

std::string
writeJson(const JsonValue &v)
{
    std::string out;
    writeValue(v, out);
    return out;
}

} // namespace middlesim::fabric
