/**
 * @file
 * Minimal JSON document model for the fabric wire protocol.
 *
 * The repo already *writes* JSON everywhere (metrics, stats); the
 * coordinator/worker protocol is the first place it must *read* some.
 * This is a deliberately small, strict RFC 8259 subset parser: every
 * failure is reported with the absolute byte offset of the fault (the
 * same discipline as the trace reader), nesting depth is bounded, and
 * a parsed value is a plain tree — no allocation is ever sized by
 * unvalidated input.
 */

#ifndef FABRIC_JSON_HH
#define FABRIC_JSON_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace middlesim::fabric
{

/** One parsed JSON value (tagged tree; objects keep member order). */
struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Object,
        Array,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string text;
    std::vector<std::pair<std::string, JsonValue>> members;
    std::vector<JsonValue> elements;

    /** Member lookup; nullptr when absent or not an object. */
    const JsonValue *find(std::string_view key) const;

    /** Typed member getters with defaults (absent/mistyped = def). */
    std::string strOr(std::string_view key, std::string def) const;
    double numOr(std::string_view key, double def) const;
    std::uint64_t u64Or(std::string_view key, std::uint64_t def) const;
    bool boolOr(std::string_view key, bool def) const;
};

/**
 * Parse one JSON document (the whole of `text`; trailing bytes are an
 * error). @return false and fill `error` — always naming a byte
 * offset — on malformed input.
 */
bool parseJson(std::string_view text, JsonValue &out,
               std::string &error);

/** Compact serialization (members in stored order). */
std::string writeJson(const JsonValue &v);

} // namespace middlesim::fabric

#endif // FABRIC_JSON_HH
