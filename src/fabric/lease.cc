#include "fabric/lease.hh"

#include <algorithm>

namespace middlesim::fabric
{

LeaseTable::LeaseTable(std::size_t items, unsigned max_requeues)
    : items_(items), maxRequeues_(max_requeues)
{
}

std::optional<LeaseTable::Lease>
LeaseTable::acquire(int worker)
{
    for (std::size_t i = scan_; i < items_.size(); ++i) {
        Item &item = items_[i];
        if (item.state != State::Pending)
            continue;
        if (item.requeues > maxRequeues_)
            continue; // poisoned: inline fallback only
        item.state = State::Leased;
        item.worker = worker;
        ++item.epoch;
        if (i == scan_)
            ++scan_;
        return Lease{i, item.epoch};
    }
    return std::nullopt;
}

LeaseTable::Outcome
LeaseTable::complete(std::size_t index, std::uint64_t epoch)
{
    Item &item = items_[index];
    if (item.state == State::Done) {
        ++duplicates_;
        return Outcome::Duplicate;
    }
    if (item.epoch != epoch) {
        ++stale_;
        return Outcome::Stale;
    }
    item.state = State::Done;
    item.worker = -1;
    ++done_;
    return Outcome::Accepted;
}

void
LeaseTable::fail(std::size_t index, std::uint64_t epoch)
{
    Item &item = items_[index];
    if (item.state != State::Leased || item.epoch != epoch) {
        ++stale_;
        return;
    }
    item.state = State::Pending;
    item.worker = -1;
    ++item.epoch;
    ++item.requeues;
    ++requeues_;
    scan_ = std::min(scan_, index);
}

std::vector<std::size_t>
LeaseTable::releaseWorker(int worker)
{
    std::vector<std::size_t> requeued;
    for (std::size_t i = 0; i < items_.size(); ++i) {
        Item &item = items_[i];
        if (item.state != State::Leased || item.worker != worker)
            continue;
        item.state = State::Pending;
        item.worker = -1;
        // Invalidate the dead lease right now — a zombie's late
        // RESULT must read as stale even before the re-lease.
        ++item.epoch;
        ++item.requeues;
        ++requeues_;
        requeued.push_back(i);
        scan_ = std::min(scan_, i);
    }
    return requeued;
}

bool
LeaseTable::hasLeasable() const
{
    for (std::size_t i = scan_; i < items_.size(); ++i) {
        const Item &item = items_[i];
        if (item.state == State::Pending &&
            item.requeues <= maxRequeues_) {
            return true;
        }
    }
    return false;
}

std::vector<std::size_t>
LeaseTable::unfinished() const
{
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < items_.size(); ++i) {
        if (items_[i].state != State::Done)
            out.push_back(i);
    }
    return out;
}

} // namespace middlesim::fabric
