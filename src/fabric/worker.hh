/**
 * @file
 * The fabric worker loop: serve leases over stdio frames.
 */

#ifndef FABRIC_WORKER_HH
#define FABRIC_WORKER_HH

#include "fabric/fabric.hh"

namespace middlesim::fabric
{

/**
 * Run the worker side of the `middlesim-fabric-v1` session on this
 * process's stdin/stdout: exchange HELLOs (verifying protocol version
 * and queue hash against the locally derived `items`), then execute
 * LEASE frames and stream RESULTs until BYE or EOF. A background
 * thread emits HEARTBEATs every `heartbeat_ms` so the coordinator can
 * distinguish a long-running point from a hung worker.
 *
 * stdout is re-pointed at /dev/null for the duration — the frame
 * stream owns the original fd, so a stray printf in simulation code
 * can never corrupt the protocol.
 *
 * @return 0 on orderly shutdown (BYE or EOF), 1 on protocol errors
 * (version/hash mismatch, malformed frames — diagnosed on stderr).
 */
int runWorker(const std::vector<FabricItem> &items,
              unsigned heartbeat_ms = 500);

} // namespace middlesim::fabric

#endif // FABRIC_WORKER_HH
